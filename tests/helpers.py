"""Shared test fixtures: small devices and DBs that run fast."""

from __future__ import annotations

import os

from repro.device import (
    BlockDevice,
    CpuModel,
    Ftl,
    KiB,
    MiB,
    NandArray,
    NandGeometry,
    PcieLink,
)
from repro.lsm import DbImpl, LsmOptions
from repro.sim import Environment


def small_options(**kw) -> LsmOptions:
    base = dict(
        write_buffer_size=16 * KiB,
        level0_file_num_compaction_trigger=2,
        level0_slowdown_writes_trigger=6,
        level0_stop_writes_trigger=10,
        max_bytes_for_level_base=64 * KiB,
        max_bytes_for_level_multiplier=4,
        target_file_size_base=16 * KiB,
        soft_pending_compaction_bytes_limit=256 * KiB,
        hard_pending_compaction_bytes_limit=1 * MiB,
        compaction_io_chunk=16 * KiB,
        wal_group_commit_bytes=4 * KiB,
        block_size=4 * KiB,
    )
    base.update(kw)
    return LsmOptions(**base)


def small_device(env: Environment, peak_mb: float = 200.0,
                 pcie_mb: float = 1024.0) -> BlockDevice:
    g = NandGeometry(channels=2, ways=4, blocks_per_way=256,
                     pages_per_block=32, page_size=4096)
    ftl = Ftl(g, split_fraction=0.9)
    nand = NandArray(env, g, peak_bandwidth=peak_mb * MiB)
    pcie = PcieLink(env, bandwidth=pcie_mb * MiB)
    return BlockDevice(env, ftl, nand, pcie)


def small_db(env: Environment, options: LsmOptions | None = None,
             cores: int = 8, page_cache_bytes: int | None = None,
             **db_kw):
    cpu = CpuModel(env, cores=cores, name="host")
    dev = small_device(env)
    db = DbImpl(env, options or small_options(), dev, cpu,
                page_cache_bytes=page_cache_bytes, **db_kw)
    return db, dev, cpu


def run(env: Environment, gen):
    """Drive one generator to completion and return its value."""
    return env.run(until=env.process(gen))


def small_hybrid(env: Environment, cores: int = 8, peak_mb: float = 200.0,
                 devlsm_memtable: int = 8 * KiB):
    """A small HybridSsd + host CPU for KVACCEL-level tests."""
    from repro.device import (
        DevLsmConfig,
        HybridSsd,
        HybridSsdConfig,
    )

    cpu = CpuModel(env, cores=cores, name="host")
    geo = NandGeometry(channels=2, ways=4, blocks_per_way=256,
                       pages_per_block=32, page_size=4096)
    cfg = HybridSsdConfig(
        geometry=geo,
        peak_nand_bandwidth=peak_mb * MiB,
        pcie_bandwidth=1024 * MiB,
        devlsm=DevLsmConfig(memtable_bytes=devlsm_memtable),
    )
    return HybridSsd(env, cpu, cfg), cpu


def small_kvaccel(env: Environment, options: LsmOptions | None = None,
                  rollback: str = "eager", detector_period: float = 0.002,
                  **kw):
    """A fast-detector KVACCEL stack on a small hybrid SSD."""
    from repro.core import DetectorConfig, KvaccelDb

    ssd, cpu = small_hybrid(env)
    db = KvaccelDb(
        env,
        options or small_options(),
        ssd,
        cpu,
        rollback=rollback,
        detector_config=DetectorConfig(period=detector_period),
        **kw,
    )
    return db, ssd, cpu


def make_cluster_system(env: Environment, shards: int = 2,
                        router: str = "hash", key_space: int = 1 << 16,
                        seed: int = 0, rollback: str = "disabled",
                        with_faults: bool = False, resilience=None,
                        detector_period: float = 0.002,
                        options: LsmOptions | None = None, **kw):
    """N small share-nothing KVACCEL shards behind a ClusterDb.

    Shards are named ``shard<N>`` (so their daemons carry the prefix
    shard-scoped fault plans key on) and built in shard-id order — the
    same construction contract as the bench runner's cluster branch.
    Returns ``(cluster, registry)``; ``registry`` is a seeded
    FaultRegistry when ``with_faults=True``, else ``None``.
    """
    from repro.cluster import ClusterDb, make_router
    from repro.core import DetectorConfig, KvaccelDb

    registry = None
    if with_faults:
        from repro.faults import FaultRegistry

        registry = FaultRegistry(fault_seed(seed)).install(env)
    parts = []
    for sid in range(shards):
        ssd, cpu = small_hybrid(env)
        db = KvaccelDb(env, options or small_options(), ssd, cpu,
                       name=f"shard{sid}", rollback=rollback,
                       detector_config=DetectorConfig(
                           period=detector_period),
                       resilience=resilience, **kw)
        parts.append((db, ssd, cpu))
    cluster = ClusterDb(
        env, parts, make_router(router, shards, key_space, seed=seed))
    return cluster, registry


def make_replicated_cluster(env: Environment, shards: int = 2,
                            backups: int = 1, mode: str = "replay",
                            with_faults: bool = False, seed: int = 0,
                            replication=None, **kw):
    """A replicated cluster (primary + K backups per shard) on the small
    scenario stacks, optionally with a seeded FaultRegistry.

    Returns ``(cluster, registry)`` like :func:`make_cluster_system`;
    ``replication`` overrides the whole :class:`ReplicationConfig` when
    the test needs non-default lag/ship/heartbeat knobs.
    """
    from repro.cluster import ReplicationConfig, build_replicated_cluster

    registry = None
    if with_faults:
        from repro.faults import FaultRegistry

        registry = FaultRegistry(fault_seed(seed)).install(env)
    if replication is None:
        replication = ReplicationConfig(mode=mode, backups=backups)
    cluster = build_replicated_cluster(env, shards=shards,
                                       replication=replication, **kw)
    return cluster, registry


def fault_seed(default: int | None = None) -> int:
    """The pinned fault/workload seed for this test run.

    Override with ``REPRO_FAULT_SEED=0x...`` to replay a failure whose
    message printed a seed.  Fault-test assertion messages embed this seed,
    so every failure is reproducible from its own output.
    """
    from repro.faults import DEFAULT_SEED

    env_seed = os.environ.get("REPRO_FAULT_SEED")
    if env_seed is not None:
        return int(env_seed, 0)
    return DEFAULT_SEED if default is None else default


def make_faulty_system(env: Environment, seed: int | None = None,
                       rollback: str = "disabled",
                       record_trace: bool = False,
                       options: LsmOptions | None = None, **kw):
    """A small KVACCEL stack with a seeded FaultRegistry installed.

    Returns ``(db, ssd, cpu, registry)``.  Arm sites on the registry and
    drive ops as usual; the registry's seed (also embedded in oracle
    assertion messages) makes any schedule reproducible:

        db, ssd, cpu, reg = make_faulty_system(env)
        reg.arm("nand.program", NthOccurrencePlan(3))   # FAIL on 3rd program
    """
    from repro.faults import FaultRegistry

    resolved = fault_seed(seed) if seed is None else seed
    registry = FaultRegistry(resolved).install(env)
    registry.record_trace = record_trace
    db, ssd, cpu = small_kvaccel(env, options=options, rollback=rollback,
                                 **kw)
    return db, ssd, cpu, registry
