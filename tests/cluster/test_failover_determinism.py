"""Failover determinism: same seed, same bytes; a perturbed replication
link is *named* by the bisector.

Three recordings of the full failover story (client workload, armed
CRASH on the primary's write path, heartbeat detection, catch-up,
promotion) with the flight recorder on:

* two clean runs with the same seed must produce **byte-identical**
  journal files — the whole point of running failover inside the DES;
* a third run with one extra DELAY armed on the replication link
  diverges, and ``python -m repro.obs diff``'s first-divergence report
  names a ``repl.*`` site as the suspect — chaos on the replication
  path is attributed to the replication path, not smeared over the
  workload;
* ``REPRO_FAULT_SEED`` reseeds the scenario end to end (the same
  contract the single-node fault harness honors).
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run  # noqa: E402

from repro.cluster import REPLAY, chaos_seed, run_failover_scenario  # noqa: E402
from repro.faults import DELAY, FaultAction, NthOccurrencePlan  # noqa: E402
from repro.obs.journal import (  # noqa: E402
    first_divergence,
    format_divergence,
    load_journal,
)

OPS = 50


def _delay_replication_link(registry, env, cluster):
    registry.arm("repl.link.send", NthOccurrencePlan(2),
                 FaultAction(DELAY, delay=0.002))


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    d = tmp_path_factory.mktemp("failover_journals")
    paths = {"a": str(d / "a.jsonl.gz"), "b": str(d / "b.jsonl.gz"),
             "perturbed": str(d / "perturbed.jsonl.gz")}
    reports = {
        "a": run_failover_scenario(REPLAY, ops=OPS,
                                   journal_path=paths["a"]),
        "b": run_failover_scenario(REPLAY, ops=OPS,
                                   journal_path=paths["b"]),
        "perturbed": run_failover_scenario(
            REPLAY, ops=OPS, journal_path=paths["perturbed"],
            extra_arms=_delay_replication_link),
    }
    return paths, reports


def test_same_seed_failover_journals_byte_identical(recorded):
    paths, reports = recorded
    assert reports["a"].ok and reports["a"].failovers >= 1, \
        reports["a"].describe()
    ba = Path(paths["a"]).read_bytes()
    bb = Path(paths["b"]).read_bytes()
    assert ba == bb, ("same seed must give byte-identical failover "
                      "journals (promotion included)")
    loaded = load_journal(paths["a"])
    sites = {r[4] for r in loaded["records"] if r[0] == "site"}
    # The promotion choreography is on the record, not just the workload.
    for site in ("repl.primary.kill", "repl.heartbeat.miss",
                 "repl.promote", "repl.failover.complete"):
        assert site in sites, site


def test_bisector_names_the_replication_link(recorded):
    paths, reports = recorded
    assert reports["perturbed"].ok, reports["perturbed"].describe()
    report = first_divergence(load_journal(paths["a"]),
                              load_journal(paths["perturbed"]))
    assert report["divergent"] is True
    assert report["suspect_site"] is not None
    assert report["suspect_site"]["site"].startswith("repl."), \
        format_divergence(report, "clean", "delayed-link")


def test_chaos_seed_honors_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_SEED", "0xBEEF")
    assert chaos_seed() == 0xBEEF
    r = run_failover_scenario(REPLAY, ops=20, kill_site=None)
    assert r.seed == 0xBEEF
    monkeypatch.delenv("REPRO_FAULT_SEED")
    assert chaos_seed(7) == 7
