"""Failover battery: primary kills mid-run, typed rejection, degraded
promotion, and the bounded acked-write-loss sweep.

The heavy lifting lives in :mod:`repro.cluster.scenario` — each test
here runs one deterministic story (seeded via ``REPRO_FAULT_SEED``
override like every fault test; assertion messages embed the seed) and
asserts the report's oracle verdict plus the specific mechanism under
test.  The full two-mode crash-point sweep runs in
``python -m repro.bench failover``; the version here is bounded for
tier-1 wall-clock.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import make_replicated_cluster, run  # noqa: E402

from repro.cluster import (  # noqa: E402
    INDEX_SHIP,
    REPLAY,
    ReplicationConfig,
    failover_sweep,
    run_failover_scenario,
)
from repro.resil import (  # noqa: E402
    TRANSIENT,
    FailoverInProgress,
    ResilienceConfig,
    RetryPolicy,
)
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


@pytest.mark.parametrize("mode", [REPLAY, INDEX_SHIP])
def test_primary_kill_mid_run_promotes_and_loses_nothing(mode):
    r = run_failover_scenario(mode, ops=60)
    assert r.crashed, r.describe()
    assert r.failovers >= 1, r.describe()
    assert r.ok, r.describe()
    assert not r.lost and not r.stale, r.describe()
    # The promoted slot kept serving: every op eventually acked.
    assert r.acked == r.ops, r.describe()


def test_scripted_kill_and_epoch_advances():
    r = run_failover_scenario(REPLAY, kill_site=None, kill_at_op=12, ops=50)
    assert r.crashed and r.failovers == 1, r.describe()
    assert r.ok, r.describe()
    assert r.acked == r.ops, r.describe()


def test_rejection_is_typed_and_transient():
    """With the retry budget collapsed to one attempt, the facade's
    rejection during a failover surfaces as the typed
    :class:`FailoverInProgress` — transient, shard-addressed."""
    env = Environment()
    repl = ReplicationConfig(retry=RetryPolicy(max_attempts=1))
    cluster, _ = make_replicated_cluster(env, shards=1, replication=repl)
    run(env, cluster.put(encode_key(1), b"before"))
    grp = cluster.groups[0]
    grp.kill_primary()
    assert not grp.accepting()
    with pytest.raises(FailoverInProgress) as ei:
        run(env, cluster.put(encode_key(2), b"rejected"))
    assert ei.value.sid == 0
    assert ei.value.kind == TRANSIENT
    assert ei.value.site == "cluster.shard0"
    assert ei.value.epoch == 0
    cluster.close()


def test_default_retry_rides_out_the_failover_window():
    """Same kill, default budget: the caller sees latency, not an error
    — the write issued into the dead slot lands on the promoted backup."""
    env = Environment()
    cluster, _ = make_replicated_cluster(env, shards=1)
    run(env, cluster.put(encode_key(1), b"before"))
    grp = cluster.groups[0]
    grp.kill_primary()
    run(env, cluster.put(encode_key(2), b"after-promotion"))
    assert grp.failovers == 1 and grp.epoch == 1
    assert run(env, cluster.get(encode_key(2))) == b"after-promotion"
    # The pre-kill acked write survived via catch-up.
    assert run(env, cluster.get(encode_key(1))) == b"before"
    cluster.close()


def test_failover_on_degraded_promotes_off_a_sick_primary():
    resil = ResilienceConfig(degrade_error_threshold=3,
                             degrade_window=0.05,
                             recover_probation=10.0,
                             recover_min_successes=1 << 30)
    repl = ReplicationConfig(mode=REPLAY, failover_on_degraded=True)
    r = run_failover_scenario(
        REPLAY, kill_site=None, degrade_at_op=10, ops=50,
        resilience=resil, replication=repl)
    assert r.failovers >= 1, r.describe()
    assert r.ok or r.crashed is False, r.describe()
    assert not r.lost and not r.stale, r.describe()


@pytest.mark.parametrize("mode", [REPLAY, INDEX_SHIP])
def test_bounded_zero_loss_sweep(mode):
    reports = failover_sweep(mode, occurrences=range(1, 4), ops=40)
    bad = [r.describe() for r in reports if not r.ok]
    assert not bad, "; ".join(bad)
    assert all(r.crashed and r.failovers >= 1 for r in reports), \
        [r.describe() for r in reports]


def test_negative_control_no_crash_no_failover():
    r = run_failover_scenario(REPLAY, kill_site=None, ops=50)
    assert r.ok and not r.crashed, r.describe()
    assert r.failovers == 0 and r.aborted == 0, r.describe()
    assert r.acked == r.ops, r.describe()
