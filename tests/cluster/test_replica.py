"""Replica groups: replication-mode semantics and off-by-default gating.

Covers the two replication modes' *lag contracts* (replay applies a
record only after its sim-time lag window; index-ship installs only at
ship-period boundaries, paying link amplification), backup convergence
under ``drain()``, and the gating claims the tentpole makes: a cluster
built without a :class:`ReplicationConfig` constructs no replica
machinery, and a replicated, failure-free run leaves the *primary's*
trajectory identical to the unreplicated cluster (the group only reads
acks via pure-Python log appends).
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import make_cluster_system, make_replicated_cluster, run  # noqa: E402

from repro.cluster import (  # noqa: E402
    INDEX_SHIP,
    REPLAY,
    ReplicationConfig,
)
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


def _fill(cluster, n, stride=1, tag=b"v"):
    for i in range(n):
        yield from cluster.put(encode_key(i * stride),
                               tag + b"%04d" % i)


def test_replay_respects_lag_window():
    env = Environment()
    repl = ReplicationConfig(mode=REPLAY, lag=0.05, poll=0.001)
    cluster, _ = make_replicated_cluster(env, shards=1, replication=repl)
    run(env, _fill(cluster, 8))
    grp = cluster.groups[0]
    assert len(grp.log) == 8
    t_acked = grp.log[-1][0]

    # Inside the lag window nothing may have applied yet.
    env.run(until=t_acked + repl.lag / 2)
    assert grp.backups[0].cursor == 0
    assert grp.replication_lag() == 8

    # Past the window (plus a poll) the whole log streams across.
    env.run(until=t_acked + repl.lag + 10 * repl.poll)
    assert grp.backups[0].cursor == 8
    assert grp.replication_lag() == 0
    # ...as real writes on the backup stack, readable in place.
    got = run(env, grp.backups[0].db.get(encode_key(0)))
    assert got == b"v0000"
    cluster.close()


def test_index_ship_installs_at_boundaries_with_amplification():
    env = Environment()
    repl = ReplicationConfig(mode=INDEX_SHIP, ship_period=0.02,
                             ship_amplification=1.4, poll=0.001)
    cluster, _ = make_replicated_cluster(env, shards=1, replication=repl)
    run(env, _fill(cluster, 8))
    grp = cluster.groups[0]
    t_acked = grp.log[-1][0]
    assert t_acked < repl.ship_period, "fill must finish inside period 0"

    # Before the first boundary closes: nothing shipped.
    env.run(until=repl.ship_period - 1e-4)
    assert grp.backups[0].cursor == 0
    assert grp.link.ledger.total_bytes == 0

    # After the boundary: the whole installment lands in bulk, and the
    # link paid the shipping amplification over the raw record bytes.
    env.run(until=repl.ship_period + 10 * repl.poll)
    assert grp.backups[0].cursor == 8
    raw = sum(16 + len(k) + len(v) for _t, k, v in grp.log)
    assert grp.link.ledger.total_bytes >= raw * repl.ship_amplification * 0.99
    cluster.close()


@pytest.mark.parametrize("mode", [REPLAY, INDEX_SHIP])
def test_backups_converge_under_drain(mode):
    env = Environment()
    cluster, _ = make_replicated_cluster(env, shards=2, mode=mode)

    def workload():
        yield from _fill(cluster, 24)
        yield from cluster.delete(encode_key(3))
        yield from cluster.put(encode_key(5), b"rewritten")

    run(env, workload())
    for grp in cluster.groups.values():
        run(env, grp.drain())
        assert grp.replication_lag() == 0
        b = grp.backups[0]
        # Every key the primary owns reads identically on the backup.
        for i in range(24):
            key = encode_key(i)
            if cluster.router.route(key) != grp.sid:
                continue
            want = run(env, cluster.get(key))
            assert run(env, b.db.get(key)) == want, (mode, i)
    cluster.close()


def test_failure_free_primary_trajectory_identical_to_unreplicated():
    """The gating claim: with replication on and no failure, every facade
    ack lands at the *same sim time* as in an unreplicated cluster — the
    replica machinery costs the primary nothing."""

    def ack_times(cluster, env):
        times = []

        def driver():
            for i in range(40):
                key = encode_key(i % 12)
                if i % 7 == 6:
                    yield from cluster.delete(key)
                else:
                    yield from cluster.put(key, b"x%05d" % i)
                times.append(env.now)

        run(env, driver())
        return times

    env_a = Environment()
    plain, _ = make_cluster_system(env_a, shards=2)
    t_plain = ack_times(plain, env_a)
    plain.close()

    env_b = Environment()
    replicated, _ = make_replicated_cluster(env_b, shards=2)
    t_repl = ack_times(replicated, env_b)
    assert replicated.groups[0].failovers == 0
    replicated.close()

    assert t_plain == t_repl


def test_off_by_default_gating_and_config_validation():
    env = Environment()
    plain, _ = make_cluster_system(env, shards=2)
    assert plain.groups == {}
    assert plain._plain is True
    plain.close()

    env2 = Environment()
    replicated, _ = make_replicated_cluster(env2, shards=2)
    assert set(replicated.groups) == {0, 1}
    assert replicated._plain is False
    assert all(g.accepting() for g in replicated.groups.values())
    replicated.close()

    with pytest.raises(ValueError):
        ReplicationConfig(mode="paxos")
    with pytest.raises(ValueError):
        ReplicationConfig(backups=0)
    with pytest.raises(ValueError):
        ReplicationConfig(lag=-1.0)
    with pytest.raises(ValueError):
        ReplicationConfig(miss_threshold=0)
