"""Live resharding: router seed bump, key migration, dual-read window.

The contract under test: a ``rebalance()`` atomically cuts writes over
to the new placement, the migration driver copies every moved key to its
new owner (tombstoning the old copy), reads during the window forward
new-owner misses to the old owner, and a post-cut-over write always wins
over the migrating stale copy — composing with replication when the
cluster has replica groups.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import make_cluster_system, run  # noqa: E402

from repro.cluster import (  # noqa: E402
    HashRouter,
    Migration,
    RebalanceConfig,
    REPLAY,
    run_failover_scenario,
)
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402

KEYS = 48


def _filled_cluster(env, **kw):
    cluster, registry = make_cluster_system(env, shards=3, **kw)

    def fill():
        for i in range(KEYS):
            yield from cluster.put(encode_key(i), b"orig%04d" % i)

    run(env, fill())
    return cluster, registry


def test_migration_moves_ownership_and_preserves_data():
    env = Environment()
    cluster, _ = _filled_cluster(env)
    old_router = cluster.router

    mig_proc = cluster.rebalance()
    mig = cluster._migration
    assert mig is not None and not mig.done
    moved = [encode_key(i) for i in range(KEYS)
             if mig.moved(encode_key(i))]
    assert moved, "seed bump must relocate some keys"
    env.run(until=mig_proc)
    assert cluster._migration is None
    assert cluster.rebalances == 1
    assert cluster._moved_total == len(moved)

    # Every key reads back through the facade...
    for i in range(KEYS):
        assert run(env, cluster.get(encode_key(i))) == b"orig%04d" % i, i
    # ...and each moved key now lives on its *new* owner only.
    for key in moved:
        new_sid = cluster.router.route(key)
        assert new_sid != old_router.route(key)
        assert run(env, cluster.shards[new_sid].db.get(key)) is not None
        assert run(env,
                   cluster.shards[old_router.route(key)].db.get(key)) is None
    rep = cluster.cluster_report()
    assert rep["rebalances"] == 1 and rep["moved_keys"] == len(moved)
    cluster.close()


def test_fresh_write_beats_migrating_stale_copy():
    env = Environment()
    cluster, _ = _filled_cluster(env)

    mig_proc = cluster.rebalance()
    mig = cluster._migration
    moved = next(encode_key(i) for i in range(KEYS)
                 if mig.moved(encode_key(i)))

    def race():
        # Write (and separately delete) moved keys while the copy runs.
        yield from cluster.put(moved, b"fresh-wins")
        for i in range(KEYS):
            k = encode_key(i)
            if k != moved and mig.moved(k):
                yield from cluster.delete(k)
                return

    run(env, race())
    env.run(until=mig_proc)
    assert run(env, cluster.get(moved)) == b"fresh-wins"
    deleted = [encode_key(i) for i in range(KEYS)
               if encode_key(i) != moved and mig.moved(encode_key(i))][:1]
    for k in deleted:
        assert run(env, cluster.get(k)) is None, "fresh delete resurrected"
    cluster.close()


def test_dual_read_forwards_new_owner_miss_to_old_owner():
    env = Environment()
    cluster, registry = _filled_cluster(env, with_faults=True)

    cluster.rebalance()
    mig = cluster._migration
    moved = [encode_key(i) for i in range(KEYS)
             if mig.moved(encode_key(i))]

    def early_reads():
        # Immediately after the cut-over the copies have not landed; the
        # new owner misses and the facade must forward to the old owner.
        for key in moved:
            got = yield from cluster.get(key)
            assert got is not None, key

    run(env, early_reads())
    assert registry.hits.get("reshard.forward.read", 0) >= 1
    assert registry.hits.get("reshard.start", 0) == 1
    cluster.close()


def test_rebalance_composes_with_replication():
    r = run_failover_scenario(REPLAY, kill_site=None, reshard_at_op=10,
                              ops=60)
    assert r.rebalanced and r.moved_keys > 0, r.describe()
    assert r.ok and r.failovers == 0, r.describe()


def test_rebalance_validation():
    env = Environment()
    with pytest.raises(ValueError):
        RebalanceConfig(batch=0)
    with pytest.raises(ValueError):
        Migration(env, HashRouter(2, seed=0), HashRouter(3, seed=1))
    cluster, _ = make_cluster_system(env, shards=2)
    cluster.rebalance()
    with pytest.raises(RuntimeError):
        cluster.rebalance()          # one migration at a time
    cluster.close()
