"""Client-population model: determinism, shapes, rate limits."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import make_cluster_system, run  # noqa: E402

from repro.cluster import ClientPopulation, TenantSpec, TokenBucket  # noqa: E402
from repro.sim import Environment  # noqa: E402


def _drive(tenants, seed=5, duration=0.2, shards=2):
    env = Environment()
    cluster, _ = make_cluster_system(env, shards=shards, seed=seed)
    pop = ClientPopulation(env, cluster, tenants, duration=duration,
                           key_space=4096, seed=seed)
    run(env, pop.run())
    run(env, pop.drain())
    report = pop.report()
    cluster.close()
    return report


def test_population_is_deterministic_per_seed():
    tenants = [TenantSpec(name="a", rate=800.0, skew="zipfian"),
               TenantSpec(name="b", rate=400.0, skew="hotspot",
                          write_fraction=0.7)]
    r1 = _drive(tenants)
    r2 = _drive(tenants)
    assert r1 == r2


def test_adding_a_tenant_does_not_perturb_existing_streams():
    base = [TenantSpec(name="a", rate=800.0)]
    extra = base + [TenantSpec(name="z", rate=800.0)]
    solo = _drive(base)
    both = _drive(extra)
    a_solo = solo["tenants"][0]
    a_both = next(t for t in both["tenants"] if t["tenant"] == "a")
    # One RNG stream per tenant (MODEL.md): tenant a's arrival schedule
    # and key choices are untouched by tenant z's existence — issue
    # counts and shard distribution match exactly (latencies may differ:
    # z adds load).
    assert a_both["issued"] == a_solo["issued"]
    assert a_both["shard_ops"] == a_solo["shard_ops"]


def test_token_bucket_rejects_over_limit_tenants():
    limited = TenantSpec(name="lim", rate=4000.0, rate_limit=500.0,
                         burst=10.0)
    rep = _drive([limited], duration=0.2)
    t = rep["tenants"][0]
    assert t["rejected"] > 0
    # admitted roughly rate_limit * duration + burst, never the full
    # open-loop arrival count
    assert t["issued"] <= 500.0 * 0.2 + 10.0 + 1
    assert t["issued"] + t["rejected"] > t["issued"]


def test_flash_crowd_shape_spikes_arrivals():
    flat = TenantSpec(name="flat", rate=1000.0, shape="steady")
    flash = TenantSpec(name="flash", rate=1000.0, shape="flash",
                       flash_at=0.05, flash_duration=0.1,
                       flash_factor=5.0)
    rep = _drive([flat, flash], duration=0.2)
    by = {t["tenant"]: t for t in rep["tenants"]}
    # flash window covers half the run at 5x: noticeably more arrivals
    assert by["flash"]["issued"] > by["flat"]["issued"] * 1.5


def test_diurnal_multiplier_is_bounded_and_periodic():
    spec = TenantSpec(name="d", shape="diurnal", diurnal_period=1.0,
                      diurnal_amplitude=0.5)
    for t in (0.0, 0.25, 0.5, 0.75, 1.0, 7.25):
        m = spec.multiplier(t)
        assert 0.05 <= m <= 1.5
    assert abs(spec.multiplier(0.25) - 1.5) < 1e-9   # peak
    assert abs(spec.multiplier(0.3) - spec.multiplier(1.3)) < 1e-9


def test_token_bucket_refills_from_sim_time():
    tb = TokenBucket(rate=10.0, burst=2.0, now=0.0)
    assert tb.try_take(0.0)
    assert tb.try_take(0.0)
    assert not tb.try_take(0.0)          # bucket drained
    assert tb.try_take(0.1)              # 1 token refilled
    assert not tb.try_take(0.1)
    assert tb.try_take(10.0)             # refill clamps at burst
    assert tb.try_take(10.0)
    assert not tb.try_take(10.0)
