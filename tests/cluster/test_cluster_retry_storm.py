"""Retry-storm chaos: one tenant hammers a flapping shard, siblings hold.

The scenario ISSUE-8 adds to the cluster battery: shard 1's Dev-LSM write
path fails *transiently* (every second scoped hit, so each failure is
healed by one retry and the shard never degrades into an outage), while
a shard-pinned tenant population drives open-loop writes at every shard.
Assertions:

* the ``retry_storm.shard1`` health rule fires — and no other shard's
  retry rule does — off the per-shard ``cluster.shard{k}.retries``
  telemetry channel;
* retry traffic lands only on the faulted shard's channels (healthy
  shards' retry counters stay at zero);
* healthy tenants' write p99 stays within tolerance of a fault-free
  control run with the same seed — a storming sibling must not fatten
  a healthy shard's tail.

Assertion messages embed the seed, so any failure replays exactly.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import fault_seed, make_cluster_system, run  # noqa: E402

from repro.cluster import (  # noqa: E402
    ClientPopulation,
    TenantSpec,
    arm_shard,
)
from repro.faults import FAIL, FaultAction, NthOccurrencePlan  # noqa: E402
from repro.obs import cluster_shard_rules  # noqa: E402
from repro.obs.rules import HealthMonitor  # noqa: E402
from repro.obs.telemetry import TelemetryHub  # noqa: E402
from repro.resil import HEALTHY, ResilienceConfig  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402

SHARDS = 3
FAULTY = 1
KEY_SPACE = 1 << 16
WRITE_SITES = ("kv.put.submit", "kv.put_batch.submit", "kv.delete.submit")
PERIOD = 0.02          # telemetry bucket (s)
STORM_RATE = 100.0     # retries/s that count as a storm (2 per bucket)

# A storm, not an outage: interleaved commands can land every attempt on
# a failing (even) occurrence and exhaust their retries, so the rare
# escaped error is absorbed by the Main-LSM fallback — the degradation
# threshold is parked out of reach so the shard flaps without tripping
# DEGRADED and the retry pressure is sustained for the whole run.
RESIL = ResilienceConfig(degrade_error_threshold=1_000_000,
                         degrade_window=0.05,
                         recover_probation=1e-5,
                         recover_min_successes=4)


def _make_storm_cluster(env, seed, with_fault):
    """Cluster + detached telemetry/health pair watching shard channels.

    The hub is installed *before* the cluster is built so the facade's
    ``_register_telemetry`` wires the per-shard channels (including the
    resilience-gated ``cluster.shard{k}.retries`` deriv).
    """
    hub = TelemetryHub(env, period=PERIOD).install(env)
    cluster, registry = make_cluster_system(
        env, shards=SHARDS, router="range", key_space=KEY_SPACE,
        with_faults=True, seed=seed, resilience=RESIL)
    monitor = HealthMonitor(hub, cluster_shard_rules(
        SHARDS, period=PERIOD, retry_storm_rate=STORM_RATE))
    scoped = []
    if with_fault:
        # Transient failure on every second scoped hit: each failure is
        # healed by one retry (max_attempts=4), so the shard flaps
        # without ever tripping the degradation threshold — a storm,
        # not an outage.
        action = FaultAction(FAIL, note="transient")
        scoped = [arm_shard(registry, env, FAULTY, site,
                            NthOccurrencePlan(2, repeat=True), action)
                  for site in WRITE_SITES]
    for sh in cluster.shards:
        sh.db.detector.stop()
        sh.db.rollback_manager.stop()
    return cluster, registry, scoped, hub, monitor


def _shard_pinned_tenants():
    return [TenantSpec(name=f"t{sid}", rate=2000.0, write_fraction=1.0,
                       skew="uniform", shape="steady")
            for sid in range(SHARDS)]


def _storm_run(with_fault: bool, seed: int):
    env = Environment()
    cluster, registry, scoped, hub, monitor = _make_storm_cluster(
        env, seed, with_fault)
    span = KEY_SPACE // SHARDS
    pop = ClientPopulation(env, cluster, _shard_pinned_tenants(),
                           duration=0.2, key_space=span, seed=seed)
    # pin tenant k to shard k by offsetting its key stream into the
    # shard's range (ranges are [sid*span, (sid+1)*span))
    for sid, state in enumerate(pop.states):
        base = sid * span
        orig = state.keys.next_key

        def shifted(orig=orig, base=base):
            k = orig()
            return encode_key(base + int.from_bytes(k, "big"), 4)

        state.keys.next_key = shifted

    # stall window on: every write redirects into the Dev-LSM path,
    # where shard FAULTY's device flaps
    for sh in cluster.shards:
        sh.db.detector.stall_condition = True
    run(env, pop.run())
    run(env, pop.drain())
    hub.flush()

    p99s = {}
    for sid, state in enumerate(pop.states):
        assert state.shard_ops[sid] == state.issued, (
            f"tenant t{sid} leaked ops off its shard: {state.shard_ops}")
        if state.write_hist.total_count:
            p99s[sid] = state.write_hist.summary()["p99"]
    retries = {sid: hub.channels[f"cluster.shard{sid}.retries"].total
               for sid in range(SHARDS)}
    storms = {e.rule for e in monitor.events
              if e.phase == "enter" and e.rule.startswith("retry_storm.")}
    if with_fault:
        assert sum(s.scoped_occurrences for s in scoped) > 0
    cluster.close()
    return p99s, retries, storms, cluster


def test_retry_storm_fires_only_on_the_faulted_shard():
    seed = fault_seed()
    msg = f"(seed={seed:#x})"
    p99s, retries, storms, cluster = _storm_run(with_fault=True, seed=seed)

    # retry traffic is confined to the faulted shard's channels
    assert retries[FAULTY] > 0, f"no retries on the faulted shard {msg}"
    for sid in (0, 2):
        assert retries[sid] == 0, (
            f"healthy shard {sid} saw retries: {retries} {msg}")

    # the per-shard health rule names exactly the storming shard
    assert storms == {f"retry_storm.shard{FAULTY}"}, (
        f"storm rules fired: {storms} {msg}")

    # retries healed every failure: the flapping shard never degraded
    for sh in cluster.shards:
        assert sh.resil_state == HEALTHY, (
            f"shard {sh.sid} state {sh.resil_state} {msg}")


def test_retry_storm_healthy_tenant_p99_isolated():
    seed = fault_seed()
    msg = f"(seed={seed:#x})"
    control, c_retries, c_storms, _ = _storm_run(with_fault=False, seed=seed)
    faulted, f_retries, f_storms, _ = _storm_run(with_fault=True, seed=seed)

    assert not c_storms and all(v == 0 for v in c_retries.values()), (
        f"control run was not clean: {c_storms} {c_retries} {msg}")
    for sid in (0, 2):
        assert sid in control and sid in faulted, msg
        # open-loop arrivals: a storming sibling must not fatten a
        # healthy shard's tail — tolerance covers histogram-bucket
        # granularity and schedule jitter, not cross-shard leakage
        assert faulted[sid] <= control[sid] * 1.5 + 100.0, (
            f"healthy shard {sid} p99 {faulted[sid]:.0f}us vs control "
            f"{control[sid]:.0f}us — isolation broken {msg}")
