"""Cluster chaos: persistent device faults on one shard, siblings isolated.

The experiment: a 3-shard cluster with the resilience layer on; shard 1's
Dev-LSM write path fails persistently (every ``kv.*.submit`` it reaches,
via :class:`~repro.cluster.ShardScopedPlan`), while shards 0 and 2 see a
healthy device.  Two phases:

* **durability** — a scripted stall window forces redirects on every
  shard (the only path that reaches the armed sites), with one
  differential oracle *per shard* tracking every op; after drain +
  final rollback, no shard may have lost or corrupted data (the faulty
  shard's failed redirects fall back to its Main-LSM).
* **isolation** — an open-loop client population drives shard-pinned
  tenants over the range router; the healthy shards' tenant write p99
  must stay within tolerance of a fault-free control run with the same
  seed, and the blast radius must be exactly shard 1 (the scoped plans'
  ``foreign_hits`` prove healthy shards reached the sites and were
  skipped).

Fault sites are reached inline in the process driving the op, so every
op here runs in a ``shard<N>.``-named process — the same contract the
cluster facade and population follow.

Assertion messages embed the seed, so any failure replays exactly.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import fault_seed, make_cluster_system, run  # noqa: E402

from repro.cluster import (  # noqa: E402
    ClientPopulation,
    TenantSpec,
    arm_shard,
    shard_process_name,
)
from repro.faults import FAIL, AlwaysPlan, FaultAction  # noqa: E402
from repro.faults.oracle import DifferentialOracle  # noqa: E402
from repro.resil import DEGRADED, HEALTHY, ResilienceConfig  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402

SHARDS = 3
FAULTY = 1
KEY_SPACE = 1 << 16
WRITE_SITES = ("kv.put.submit", "kv.put_batch.submit", "kv.delete.submit")

RESIL = ResilienceConfig(degrade_error_threshold=3,
                         degrade_window=0.05,
                         recover_probation=1e-5,
                         recover_min_successes=4)


def _make_cluster(env, seed, with_fault):
    cluster, registry = make_cluster_system(
        env, shards=SHARDS, router="range", key_space=KEY_SPACE,
        with_faults=True, seed=seed, resilience=RESIL)
    scoped = []
    if with_fault:
        action = FaultAction(FAIL, note="persistent")
        scoped = [arm_shard(registry, env, FAULTY, site, AlwaysPlan(),
                            action)
                  for site in WRITE_SITES]
    # Scripted stall windows (the redirect path is the only one that
    # reaches kv.*.submit); the polling daemons would only add noise.
    for sh in cluster.shards:
        sh.db.detector.stop()
        sh.db.rollback_manager.stop()
    return cluster, registry, scoped


def test_faulty_shard_degrades_healthy_shards_keep_durability():
    seed = fault_seed()
    env = Environment()
    cluster, registry, scoped = _make_cluster(env, seed, with_fault=True)
    oracles = [DifferentialOracle(seed=seed + sid) for sid in range(SHARDS)]
    msg = f"(seed={seed:#x})"

    def one_put(sid, key, value):
        sh = cluster.shards[sid]
        oracles[sid].begin_put(key, value)
        try:
            yield from sh.db.put(key, value)
        except Exception:
            oracles[sid].abort()
            if sh.db.main.background_error is not None:
                sh.db.main.resume()
        else:
            oracles[sid].ack()

    def workload():
        # stall window on: every write redirects into the Dev-LSM path,
        # where shard FAULTY's device persistently fails
        for sh in cluster.shards:
            sh.db.detector.stall_condition = True
        for i in range(40):
            for sid in range(SHARDS):
                key = encode_key(sid * 1000 + i, 4)
                # run each op in a shard-named process: fault sites are
                # reached inline, and scoping is by active-process name
                yield env.process(
                    one_put(sid, key, b"c%04d" % i),
                    name=shard_process_name(sid, "chaos"))
        for sh in cluster.shards:
            sh.db.detector.stall_condition = False

    run(env, workload())
    registry.clear_arms()
    run(env, cluster.wait_for_quiesce())
    run(env, cluster.final_rollback())

    # blast radius: shard FAULTY's ops hit the armed plans; healthy
    # shards reached the same sites and were skipped
    assert sum(s.scoped_occurrences for s in scoped) > 0, msg
    assert sum(s.foreign_hits for s in scoped) > 0, (
        f"healthy shards never reached the armed sites — the scenario "
        f"exercised nothing {msg}")
    assert len(registry.injected) > 0, msg

    # per-shard differential oracle: no shard lost or corrupted anything
    for sid, oracle in enumerate(oracles):
        violations = run(env, oracle.verify(cluster.shards[sid].db,
                                            allow_inflight=True))
        assert not violations, (
            f"shard {sid} durability violations {msg}: "
            f"{[v.describe() for v in violations]}")

    # health split: the faulty shard is DEGRADED, siblings HEALTHY
    states = [sh.resil_state for sh in cluster.shards]
    assert states[FAULTY] == DEGRADED, f"states={states} {msg}"
    for sid in (0, 2):
        assert states[sid] == HEALTHY, f"states={states} {msg}"
    assert cluster.degraded_shards() == 1, msg
    assert cluster.shards[FAULTY].db.resil.fallback_writes > 0, msg
    cluster.close()


def _shard_pinned_tenants():
    """One tenant per shard: the range router owns ``[sid*span,
    (sid+1)*span)``, and hotspot keys with the hot set filling exactly
    that range pin all of a tenant's traffic to its shard."""
    return [TenantSpec(name=f"t{sid}", rate=2000.0, write_fraction=1.0,
                       skew="uniform", shape="steady")
            for sid in range(SHARDS)]


def _population_p99s(with_fault: bool, seed: int) -> dict:
    env = Environment()
    cluster, registry, scoped = _make_cluster(env, seed, with_fault)
    span = KEY_SPACE // SHARDS
    pop = ClientPopulation(env, cluster, _shard_pinned_tenants(),
                           duration=0.2, key_space=span, seed=seed)
    # pin tenant k to shard k by offsetting its key stream into the
    # shard's range (ranges are [sid*span, (sid+1)*span))
    for sid, state in enumerate(pop.states):
        base = sid * span
        orig = state.keys.next_key

        def shifted(orig=orig, base=base):
            k = orig()
            return encode_key(base + int.from_bytes(k, "big"), 4)

        state.keys.next_key = shifted

    # identical stall windows in both runs, so control and faulted differ
    # only in the injected faults
    for sh in cluster.shards:
        sh.db.detector.stall_condition = True
    run(env, pop.run())
    run(env, pop.drain())
    p99s = {}
    for sid, state in enumerate(pop.states):
        assert state.shard_ops[sid] == state.issued, (
            f"tenant t{sid} leaked ops off its shard: {state.shard_ops}")
        if state.write_hist.total_count:
            p99s[sid] = state.write_hist.summary()["p99"]
    if with_fault:
        assert sum(s.scoped_occurrences for s in scoped) > 0
        assert cluster.shards[FAULTY].resil_state == DEGRADED
        for sid in (0, 2):
            assert cluster.shards[sid].resil_state == HEALTHY
    cluster.close()
    return p99s


def test_tenant_isolation_healthy_shards_p99_within_tolerance():
    seed = fault_seed()
    control = _population_p99s(with_fault=False, seed=seed)
    faulted = _population_p99s(with_fault=True, seed=seed)
    msg = f"(seed={seed:#x})"
    for sid in (0, 2):
        assert sid in control and sid in faulted, msg
        # open-loop arrivals: a degraded sibling must not fatten a healthy
        # shard's tail — tolerance covers histogram-bucket granularity
        # and schedule jitter, not a stall leaking across shards
        assert faulted[sid] <= control[sid] * 1.5 + 100.0, (
            f"healthy shard {sid} p99 {faulted[sid]:.0f}us vs control "
            f"{control[sid]:.0f}us — isolation broken {msg}")
