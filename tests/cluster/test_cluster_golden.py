"""Differential oracle: a 1-shard cluster IS the single-instance system.

The cluster facade promises to be a zero-cost wrapper: with one shard,
every data-plane call passes straight through (``yield from``, no spawned
processes, no extra events), so the full simulated trajectory — every
sampled series, latency percentile, stall interval — must be *bit
identical* to the pinned single-instance fig11 golden run.  Only the
display name may differ ("Cluster(1)" vs "KVAccel(1)").

If this fails, the facade leaked simulation work into the 1-shard path
(an extra event, a reordered construction step) and every cluster result
is suspect — fix the facade, never regenerate the golden for this.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import make_cluster_system, run, small_kvaccel  # noqa: E402

from repro.bench import RunSpec, mini_profile, run_workload  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402

GOLDEN = (Path(__file__).resolve().parents[1] / "data"
          / "golden_fig11_cell.json")


def test_one_shard_cluster_matches_pinned_golden_trajectory():
    result = run_workload(
        RunSpec("cluster", "A", 1, rollback="disabled", shards=1),
        mini_profile(256))
    produced = json.loads(json.dumps(result.to_json()))
    golden = json.loads(GOLDEN.read_text())
    assert set(produced) == set(golden)
    for field in golden:
        if field == "name":
            assert produced[field] == "Cluster(1)"
            continue
        assert produced[field] == golden[field], (
            f"1-shard cluster diverged from the single-instance golden in "
            f"field {field!r} — the facade is not a zero-cost wrapper")


def test_one_shard_cluster_matches_plain_kvaccel_reads():
    """Same ops through a 1-shard cluster and a bare KvaccelDb read back
    identically (the small-system form of the differential oracle)."""
    env_a = Environment()
    db, _, _ = small_kvaccel(env_a, rollback="disabled")
    env_b = Environment()
    cluster, _ = make_cluster_system(env_b, shards=1, rollback="disabled")

    keys = [encode_key(i, 4) for i in range(48)]

    def drive(target):
        for i, k in enumerate(keys):
            yield from target.put(k, b"v%03d" % i)
        yield from target.put_batch(
            [(k, b"b%03d" % i) for i, k in enumerate(keys[:16])])
        out = []
        for k in keys:
            out.append((yield from target.get(k)))
        return out

    got_a = run(env_a, drive(db))
    got_b = run(env_b, drive(cluster))
    assert got_a == got_b
    assert env_a.now == env_b.now, (
        "1-shard cluster consumed different simulated time than the bare "
        "system for the same ops")
    db.close()
    cluster.close()
