"""Property tests for the cluster key-space routers.

Invariants the serving layer is built on:

* totality/uniqueness — every key routes to exactly one shard, always in
  ``[0, shards)``, and re-routing the same key gives the same answer;
* seed stability — a hash router rebuilt with the same (shards, seed)
  routes identically (routing never consults interpreter state, unlike
  builtin ``hash``), and a different placement seed actually moves keys;
* range coverage — range ranges tile ``[0, key_space)`` with no gaps and
  no overlaps, boundary keys land in the upper range, and out-of-space
  keys clamp into the last shard;
* batch splitting — ``split_batch`` is a permutation-free partition:
  ascending shard ids, intra-shard order preserved, nothing lost or
  duplicated.
"""

import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.cluster import HashRouter, RangeRouter, make_router  # noqa: E402
from repro.types import encode_key  # noqa: E402

keys_strategy = st.lists(st.binary(min_size=1, max_size=12),
                         min_size=1, max_size=64)


@settings(max_examples=100, deadline=None)
@given(shards=st.integers(1, 32), seed=st.integers(0, 2**32),
       keys=keys_strategy)
def test_hash_router_total_and_deterministic(shards, seed, keys):
    r = HashRouter(shards, seed=seed)
    for key in keys:
        sid = r.route(key)
        assert 0 <= sid < shards
        assert r.route(key) == sid          # stable within an instance


@settings(max_examples=100, deadline=None)
@given(shards=st.integers(1, 32), seed=st.integers(0, 2**32),
       keys=keys_strategy)
def test_hash_router_seed_stable_across_instances(shards, seed, keys):
    a = HashRouter(shards, seed=seed)
    b = HashRouter(shards, seed=seed)
    assert [a.route(k) for k in keys] == [b.route(k) for k in keys]


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32))
def test_hash_router_seed_changes_placement(seed):
    # With 4+ shards and many keys, two different placement seeds must
    # disagree somewhere — otherwise the seed isn't versioning the layout.
    a = HashRouter(8, seed=seed)
    b = HashRouter(8, seed=seed + 1)
    keys = [encode_key(i, 4) for i in range(256)]
    assert any(a.route(k) != b.route(k) for k in keys)


@settings(max_examples=100, deadline=None)
@given(shards=st.integers(1, 32), space_mult=st.integers(1, 1000))
def test_range_router_covers_keyspace_no_gaps_no_overlaps(shards,
                                                          space_mult):
    key_space = shards * space_mult
    r = RangeRouter(shards, key_space)
    ranges = r.ranges()
    assert len(ranges) == shards
    # Tiling: starts at 0, ends at key_space, each range begins where the
    # previous ended (no gap, no overlap), and no range is empty... except
    # that even splits of tiny spaces may give width-0 ranges only when
    # key_space == shards would force it — the constructor forbids
    # key_space < shards, so every range has width >= 0 and the
    # boundaries are monotone.
    assert ranges[0][0] == 0
    assert ranges[-1][1] == key_space
    for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
        assert hi1 == lo2
        assert lo1 <= hi1 and lo2 <= hi2


@settings(max_examples=100, deadline=None)
@given(shards=st.integers(1, 16), space_mult=st.integers(1, 64),
       ks=st.lists(st.integers(0, 2**20), min_size=1, max_size=64))
def test_range_router_routes_into_owning_range(shards, space_mult, ks):
    key_space = shards * space_mult
    r = RangeRouter(shards, key_space)
    ranges = r.ranges()
    for k in ks:
        sid = r.route(encode_key(k, 4))
        assert 0 <= sid < shards
        lo, hi = ranges[sid]
        if k >= key_space:
            assert sid == shards - 1        # clamp rule
        else:
            assert lo <= k < hi


def test_range_router_boundary_keys_go_up():
    # A key exactly on an internal boundary b_i starts the upper range.
    r = RangeRouter(4, 1000)
    for sid, b in enumerate(r.bounds, start=1):
        assert r.route(encode_key(b, 4)) == sid
        assert r.route(encode_key(b - 1, 4)) == sid - 1


@settings(max_examples=100, deadline=None)
@given(policy=st.sampled_from(["hash", "range"]),
       shards=st.integers(1, 16),
       pairs=st.lists(st.tuples(st.integers(0, 2**16 - 1),
                                st.integers(0, 255)),
                      min_size=0, max_size=80))
def test_split_batch_is_a_stable_partition(policy, shards, pairs):
    r = make_router(policy, shards, 1 << 16, seed=7)
    batch = [(encode_key(k, 4), v) for k, v in pairs]
    parts = r.split_batch(batch)
    # ascending, unique shard ids; every sub-batch non-empty and owned
    sids = [sid for sid, _ in parts]
    assert sids == sorted(set(sids))
    rebuilt = []
    for sid, sub in parts:
        assert sub
        for pair in sub:
            assert r.route(pair[0]) == sid
        rebuilt.extend(sub)
    # partition: same multiset; intra-shard order preserved means each
    # sub-list is a subsequence of the original batch
    assert sorted(rebuilt) == sorted(batch)
    for sid, sub in parts:
        it = iter(batch)
        assert all(any(x == want for x in it) for want in sub), (
            f"shard {sid} sub-batch reordered")
