"""Facade behavior: routing, multi-shard batches, scans, telemetry."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import make_cluster_system, run  # noqa: E402

from repro.obs import TelemetryHub  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402

KEY_SPACE = 1 << 16


def _fill_and_read(cluster, n=64):
    keys = [encode_key(i * 37 % KEY_SPACE, 4) for i in range(n)]

    def gen():
        yield from cluster.put_batch(
            [(k, b"v%04d" % i) for i, k in enumerate(keys)])
        out = []
        for i, k in enumerate(keys):
            got = yield from cluster.get(k)
            out.append((i, got))
        return out

    return keys, gen


def test_multi_shard_batch_reads_back_everywhere():
    env = Environment()
    cluster, _ = make_cluster_system(env, shards=4)
    keys, gen = _fill_and_read(cluster)
    got = run(env, gen())
    assert all(v == b"v%04d" % i for i, v in got)
    # the batch actually spread over shards
    ops = [sh.write_ops for sh in cluster.shards]
    assert sum(ops) == len(keys)
    assert sum(1 for n in ops if n > 0) >= 2, ops
    cluster.close()


def test_range_router_scan_merges_in_key_order():
    env = Environment()
    cluster, _ = make_cluster_system(env, shards=4, router="range",
                                     key_space=KEY_SPACE)
    # keys chosen to straddle all four range boundaries
    step = KEY_SPACE // 8
    ranks = [i * step + 3 for i in range(8)]
    keys = [encode_key(r, 4) for r in ranks]

    def gen():
        yield from cluster.put_batch(
            [(k, b"r%04d" % r) for r, k in zip(ranks, keys)])
        rows = yield from cluster.scan(encode_key(0, 4), len(keys))
        return rows

    rows = run(env, gen())
    assert [k for k, _ in rows] == sorted(keys)
    assert len(rows) == len(keys)
    cluster.close()


def test_hash_router_scan_visits_all_shards():
    env = Environment()
    cluster, _ = make_cluster_system(env, shards=3)
    keys = [encode_key(i, 4) for i in range(24)]

    def gen():
        yield from cluster.put_batch([(k, b"x") for k in keys])
        rows = yield from cluster.scan(encode_key(0, 4), 24)
        return rows

    rows = run(env, gen())
    assert [k for k, _ in rows] == sorted(keys)
    cluster.close()


def test_cluster_report_shapes():
    env = Environment()
    cluster, _ = make_cluster_system(env, shards=2)
    _, gen = _fill_and_read(cluster, n=32)
    run(env, gen())
    rep = cluster.cluster_report()
    assert rep["shards"] == 2
    assert len(rep["per_shard"]) == 2
    assert rep["degraded_shards"] == 0
    assert rep["aggregate_write_latency"]["count"] > 0
    for row in rep["per_shard"]:
        assert row["resil_state"] == "healthy"
        assert row["write_amplification"] >= 0.0
    # snapshot is plain data (picklable across bench workers)
    import pickle

    pickle.dumps(rep)
    cluster.close()


def test_cluster_telemetry_channels_registered():
    env = Environment()
    hub = TelemetryHub(env, period=0.01).install(env)
    cluster, _ = make_cluster_system(env, shards=2)
    _, gen = _fill_and_read(cluster, n=32)
    run(env, gen())
    hub.stop(flush=True)
    doc = hub.export()
    names = set(doc["channels"])
    for sid in range(2):
        assert f"cluster.shard{sid}.write_ops" in names
        assert f"cluster.shard{sid}.resil_state" in names
        assert f"cluster.shard{sid}.devlsm_bytes" in names
    assert "cluster.degraded_shards" in names
    assert "cluster.hot_shard" in names
    # facade-fed op rates actually counted: 32 writes split over 2 shards
    writes = (sum(doc["channels"]["cluster.shard0.write_ops"])
              + sum(doc["channels"]["cluster.shard1.write_ops"]))
    assert writes == 32
    reads = (sum(doc["channels"]["cluster.shard0.read_ops"])
             + sum(doc["channels"]["cluster.shard1.read_ops"]))
    assert reads == 32
    cluster.close()


def test_hot_shard_detection():
    env = Environment()
    cluster, _ = make_cluster_system(env, shards=4, router="range",
                                     key_space=KEY_SPACE)
    # all heat on the first range → shard 0 is hot
    keys = [encode_key(i % 64, 4) for i in range(64)]

    def gen():
        for k in keys:
            yield from cluster.put(k, b"hot")

    run(env, gen())
    assert cluster.hot_shard() == 0
    assert cluster.cluster_report()["hot_shard"] == 0
    cluster.close()
