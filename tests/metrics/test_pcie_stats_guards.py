"""Edge-case guards for repro.metrics.pcie_stats.

KVACCEL cells that never stall hit the empty-``stall_intervals`` path on
every analysis call; these tests pin that path (and the other degenerate
shapes) so Fig 4/5/14 post-processing can never crash on a healthy run.
"""

import pytest

from repro.metrics.pcie_stats import (
    StallPcieStats,
    analyze_stall_pcie,
    utilization_cdf,
    zero_traffic_buckets,
)

CAP = 100.0  # bytes/s capacity for readable utilisation numbers


def test_empty_stall_intervals():
    times = [1.0, 2.0, 3.0]
    traffic = [10.0, 20.0, 30.0]
    stats = analyze_stall_pcie(times, traffic, [], CAP)
    assert stats.stall_buckets == 0
    assert stats.zero_buckets == 0
    assert stats.above_90_buckets == 0
    assert stats.utilizations == []
    # Zero stall_buckets must not divide by zero.
    assert stats.zero_fraction == 0.0
    assert stats.above_90_fraction == 0.0
    assert zero_traffic_buckets(times, traffic, []) == 0


def test_empty_series():
    stats = analyze_stall_pcie([], [], [(0.0, 5.0)], CAP)
    assert stats.stall_buckets == 0
    assert stats.utilizations == []
    assert zero_traffic_buckets([], [], [(0.0, 5.0)]) == 0


def test_empty_series_and_intervals():
    stats = analyze_stall_pcie([], [], [], CAP)
    assert stats.stall_buckets == 0
    xs, cdf = utilization_cdf(stats.utilizations)
    assert cdf == [0.0] * len(xs)


def test_single_bucket_stall():
    # Stall fully inside bucket 2 (the bucket ending at t=2.0).
    times = [1.0, 2.0, 3.0]
    traffic = [100.0, 0.0, 100.0]
    stats = analyze_stall_pcie(times, traffic, [(1.2, 1.8)], CAP)
    assert stats.stall_buckets == 1
    assert stats.zero_buckets == 1
    assert stats.above_90_buckets == 0
    assert stats.utilizations == [0.0]
    assert stats.zero_fraction == 1.0
    assert zero_traffic_buckets(times, traffic, [(1.2, 1.8)]) == 1


def test_single_bucket_stall_busy_link():
    times = [1.0, 2.0]
    traffic = [0.0, 95.0]
    stats = analyze_stall_pcie(times, traffic, [(1.5, 1.6)], CAP)
    assert stats.stall_buckets == 1
    assert stats.zero_buckets == 0
    assert stats.above_90_buckets == 1
    assert stats.above_90_fraction == 1.0


def test_zero_length_interval():
    # An instantaneous stall still marks the bucket strictly containing it.
    times = [1.0, 2.0, 3.0]
    traffic = [10.0, 10.0, 10.0]
    stats = analyze_stall_pcie(times, traffic, [(1.5, 1.5)], CAP)
    assert stats.stall_buckets == 1


def test_interval_spanning_buckets():
    times = [1.0, 2.0, 3.0, 4.0]
    traffic = [50.0, 0.0, 0.0, 50.0]
    stats = analyze_stall_pcie(times, traffic, [(1.5, 3.5)], CAP)
    # Buckets ending at 2, 3, 4 all overlap (1.5, 3.5).
    assert stats.stall_buckets == 3
    assert stats.zero_buckets == 2


def test_mismatched_lengths_raise():
    with pytest.raises(ValueError, match="mismatch"):
        analyze_stall_pcie([1.0, 2.0], [10.0], [], CAP)
    with pytest.raises(ValueError, match="mismatch"):
        zero_traffic_buckets([1.0], [10.0, 20.0], [])


def test_inverted_interval_raises():
    with pytest.raises(ValueError, match="ends before"):
        analyze_stall_pcie([1.0, 2.0], [1.0, 2.0], [(3.0, 1.0)], CAP)


def test_nonpositive_capacity_raises():
    with pytest.raises(ValueError, match="capacity"):
        analyze_stall_pcie([1.0], [1.0], [], 0.0)


def test_stats_dataclass_fractions():
    s = StallPcieStats(stall_buckets=4, zero_buckets=2, above_90_buckets=1,
                       utilizations=[0.0, 0.0, 0.5, 0.95])
    assert s.zero_fraction == 0.5
    assert s.above_90_fraction == 0.25
