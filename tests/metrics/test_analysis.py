"""Tests for the post-run analysis module."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_db  # noqa: E402

from repro.metrics import (  # noqa: E402
    RunResult,
    StallBreakdown,
    WriteAmplification,
    stall_breakdown,
    write_amplification,
)
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


class TestWriteAmplification:
    def test_factor_and_breakdown(self):
        wa = WriteAmplification(user_bytes=100, wal_bytes=100,
                                flush_bytes=100, compaction_bytes=200,
                                redirect_bytes=50)
        assert wa.total_device_writes == 450
        assert wa.factor == pytest.approx(4.5)
        b = wa.breakdown()
        assert b["wal"] == pytest.approx(1.0)
        assert b["compaction"] == pytest.approx(2.0)

    def test_zero_user_bytes(self):
        wa = WriteAmplification(0, 0, 0, 0)
        assert wa.factor == 0.0
        assert wa.breakdown() == {}

    def test_from_live_db(self):
        env = Environment()
        db, _, _ = small_db(env)

        def gen():
            for i in range(2000):
                yield from db.put(encode_key(i), b"x" * 64)

        run(env, gen())
        run(env, db.wait_for_quiesce())
        wa = write_amplification(db)
        assert wa.user_bytes == db.stats.user_write_bytes
        assert wa.wal_bytes > 0
        assert wa.flush_bytes > 0
        assert wa.compaction_bytes > 0
        # sanity: an LSM writes each byte more than once overall
        assert wa.factor > 1.5


class TestStallBreakdown:
    def test_fractions_and_extremes(self):
        sb = StallBreakdown(duration=10.0, stall_events=2, stall_time=3.0,
                            delayed_time=1.0,
                            intervals=[(0.0, 1.0), (5.0, 7.0)])
        assert sb.stall_fraction == pytest.approx(0.3)
        assert sb.delayed_fraction == pytest.approx(0.1)
        assert sb.longest_stall == pytest.approx(2.0)
        assert sb.mean_stall == pytest.approx(1.5)

    def test_empty(self):
        sb = StallBreakdown(duration=0.0, stall_events=0, stall_time=0.0,
                            delayed_time=0.0)
        assert sb.stall_fraction == 0.0
        assert sb.longest_stall == 0.0
        assert sb.mean_stall == 0.0

    def test_from_run_result(self):
        r = RunResult(name="x", duration=4.0, write_ops=1, read_ops=0,
                      write_bytes=10)
        r.total_stall_time = 1.0
        r.stall_intervals = [(0.0, 1.0)]
        r.stall_events = 1
        sb = stall_breakdown(r)
        assert sb.stall_fraction == pytest.approx(0.25)
        assert sb.stall_events == 1
