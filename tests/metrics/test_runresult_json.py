"""RunResult JSON round-trip: every declared series survives, including
stall_breakdown, telemetry, and health_events; ``extra`` (live objects) is
excluded by design."""

import json

import pytest

from repro.bench.profiles import mini_profile
from repro.bench.runner import RunSpec, run_workload
from repro.metrics import RunResult

PROFILE = mini_profile(256)


@pytest.fixture(scope="module")
def result():
    return run_workload(RunSpec("rocksdb", "A", 1, slowdown=False),
                        PROFILE, telemetry=True)


def test_round_trip_preserves_every_field(result):
    doc = json.loads(json.dumps(result.to_json()))
    back = RunResult.from_json(doc)
    for f in RunResult._JSON_FIELDS:
        assert getattr(back, f) == getattr(result, f), f"field {f} mutated"


def test_round_trip_series_and_breakdown(result):
    back = RunResult.from_json(json.loads(json.dumps(result.to_json())))
    assert back.times == result.times
    assert back.write_ops_series == result.write_ops_series
    assert back.read_ops_series == result.read_ops_series
    assert back.pcie_times == result.pcie_times
    assert back.pcie_series == result.pcie_series
    assert back.stall_breakdown == result.stall_breakdown
    assert back.stall_breakdown, "stall-prone cell must have a breakdown"
    # Tuples restored so downstream analysis code sees the native shape.
    assert back.stall_intervals == result.stall_intervals
    assert all(isinstance(iv, tuple) for iv in back.stall_intervals)
    assert back.telemetry == result.telemetry
    assert back.health_events == result.health_events
    assert back.health_summary() == result.health_summary()


def test_derived_properties_survive(result):
    back = RunResult.from_json(result.to_json())
    assert back.write_throughput_ops == pytest.approx(
        result.write_throughput_ops)
    assert back.write_p99_us == pytest.approx(result.write_p99_us)
    assert back.efficiency == pytest.approx(result.efficiency)


def test_extra_excluded(result):
    doc = result.to_json()
    assert "extra" not in doc
    assert RunResult.from_json(doc).extra == {}


def test_minimal_doc():
    r = RunResult.from_json({"name": "x", "duration": 1.0, "write_ops": 2,
                             "read_ops": 0, "write_bytes": 8192})
    assert r.write_throughput_ops == 2.0
    assert r.telemetry is None
    assert r.health_events == []
    assert r.stall_intervals == []
