"""Tests for histograms, efficiency, PCIe stall stats, and the collector."""

import pytest

from repro.metrics import (
    LatencyHistogram,
    RunCollector,
    analyze_stall_pcie,
    efficiency,
    utilization_cdf,
    zero_traffic_buckets,
)
from repro.sim import Environment


class TestHistogram:
    def test_percentiles_of_uniform(self):
        h = LatencyHistogram()
        for v in range(1, 1001):
            h.record(float(v))
        assert h.percentile(50) == pytest.approx(500, rel=0.05)
        assert h.percentile(99) == pytest.approx(990, rel=0.05)
        assert h.total_count == 1000
        assert h.mean == pytest.approx(500.5, rel=0.01)

    def test_min_max(self):
        h = LatencyHistogram()
        h.record(3.0)
        h.record(777.0)
        assert h.min == 3.0
        assert h.max == 777.0

    def test_empty(self):
        h = LatencyHistogram()
        assert h.percentile(99) == 0.0
        assert h.mean == 0.0
        assert h.min == 0.0

    def test_weighted_record(self):
        h = LatencyHistogram()
        h.record(10.0, count=99)
        h.record(1000.0, count=1)
        assert h.percentile(50) == pytest.approx(10, rel=0.1)
        assert h.percentile(99.9) == pytest.approx(1000, rel=0.1)

    def test_below_min_clamps(self):
        h = LatencyHistogram(min_value=1.0)
        h.record(0.0001)
        assert h.percentile(50) <= 1.0

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for v in range(1, 501):
            a.record(float(v))
        for v in range(501, 1001):
            b.record(float(v))
        a.merge(b)
        assert a.total_count == 1000
        assert a.percentile(50) == pytest.approx(500, rel=0.05)

    def test_summary_keys(self):
        h = LatencyHistogram()
        h.record(5)
        s = h.summary()
        assert set(s) == {"count", "mean", "min", "max", "p50", "p99", "p99.9"}

    def test_validation(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.record(-1)
        with pytest.raises(ValueError):
            h.record(1, count=0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=0)


class TestEfficiency:
    def test_paper_units(self):
        # 100 MB/s at 50% CPU -> 100 / 50 = 2.0
        assert efficiency(100 * 1024 * 1024, 0.5) == pytest.approx(2.0)

    def test_zero_cpu(self):
        assert efficiency(0, 0) == 0.0
        assert efficiency(100, 0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            efficiency(-1, 0.5)
        with pytest.raises(ValueError):
            efficiency(1, -0.5)


class TestPcieStats:
    def test_stall_bucket_classification(self):
        times = [1.0, 2.0, 3.0, 4.0, 5.0]
        traffic = [0.0, 95.0, 50.0, 0.0, 100.0]
        stalls = [(0.0, 4.0)]  # covers buckets 1..4
        stats = analyze_stall_pcie(times, traffic, stalls, capacity=100.0)
        assert stats.stall_buckets == 4
        assert stats.zero_buckets == 2
        assert stats.above_90_buckets == 1
        assert stats.zero_fraction == pytest.approx(0.5)
        assert stats.above_90_fraction == pytest.approx(0.25)

    def test_no_stalls(self):
        stats = analyze_stall_pcie([1.0], [50.0], [], capacity=100.0)
        assert stats.stall_buckets == 0
        assert stats.zero_fraction == 0.0

    def test_cdf_monotone(self):
        xs, cdf = utilization_cdf([0.1, 0.5, 0.9, 0.9])
        assert cdf[0] >= 0.0
        assert cdf[-1] == 1.0
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))

    def test_cdf_empty(self):
        xs, cdf = utilization_cdf([])
        assert all(v == 0.0 for v in cdf)

    def test_zero_traffic_buckets(self):
        times = [1.0, 2.0, 3.0]
        traffic = [0.0, 5000.0, 100.0]
        stalls = [(0.0, 3.0)]
        assert zero_traffic_buckets(times, traffic, stalls) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            analyze_stall_pcie([1.0], [1.0], [], capacity=0)


class TestRunCollector:
    def test_series_and_result(self):
        env = Environment()
        col = RunCollector(env, "test", sample_period=1.0)

        def workload():
            for i in range(40):
                yield env.timeout(0.1)
                col.write_meter.add()

        env.process(workload())
        env.run(until=5.0)
        col.stop()
        res = col.result(write_ops=40, read_ops=0, write_bytes=40 * 4096)
        assert res.write_ops == 40
        assert len(res.times) == 4
        assert sum(res.write_ops_series) <= 40
        assert res.write_throughput_ops == pytest.approx(8.0)
        assert res.write_throughput_bytes == pytest.approx(40 * 4096 / 5)

    def test_attaches_latency_hooks(self):
        env = Environment()
        col = RunCollector(env, "t")

        class FakeStats:
            write_latencies = None
            read_latencies = None

        stats = FakeStats()
        col.attach_db_stats(stats)
        assert stats.write_latencies is col.write_hist
        stats.write_latencies.record(100.0)
        col.stop()
        res = col.result(1, 0, 10)
        assert res.write_latency["count"] == 1
        assert res.write_p99_us > 0

    def test_result_with_cpu_and_pcie(self):
        from repro.device import CpuModel, PcieLink
        env = Environment()
        cpu = CpuModel(env, cores=2)
        pcie = PcieLink(env, bandwidth=1000)
        col = RunCollector(env, "t")

        def workload():
            yield from cpu.consume(1.0)
            yield from pcie.transfer(500)

        env.process(workload())
        env.run(until=4.0)
        col.stop()
        res = col.result(0, 0, 0, host_cpu=cpu, pcie_ledger=pcie.ledger)
        assert res.cpu_utilization == pytest.approx(1.0 / 8.0)
        assert sum(res.pcie_series) == pytest.approx(500)
