"""Tests for key generators, workload specs, and db_bench drivers."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_db, small_options  # noqa: E402

from repro.sim import Environment  # noqa: E402
from repro.types import ValueRef  # noqa: E402
from repro.workload import (  # noqa: E402
    WORKLOADS,
    DriverConfig,
    FillRandomDriver,
    RandomKeys,
    ReadWhileWritingDriver,
    SeekRandomDriver,
    SequentialKeys,
    ZipfianKeys,
    fill_database,
    value_for,
)


class TestKeyGen:
    def test_random_keys_in_space(self):
        g = RandomKeys(key_space=100, seed=1)
        for _ in range(1000):
            k = g.next_key()
            assert len(k) == 4
            assert int.from_bytes(k, "big") < 100

    def test_random_deterministic_by_seed(self):
        a = [RandomKeys(1000, seed=5).next_key() for _ in range(10)]
        b = [RandomKeys(1000, seed=5).next_key() for _ in range(10)]
        assert a == b

    def test_sequential(self):
        g = SequentialKeys(start=7)
        ks = [g.next_key() for _ in range(3)]
        assert [int.from_bytes(k, "big") for k in ks] == [7, 8, 9]

    def test_zipfian_skew(self):
        g = ZipfianKeys(key_space=1000, theta=0.99, seed=3)
        counts = {}
        for _ in range(5000):
            r = int.from_bytes(g.next_key(), "big")
            assert 0 <= r < 1000
            counts[r] = counts.get(r, 0) + 1
        top = sorted(counts.values(), reverse=True)
        # heavy skew: the hottest key dominates the median key
        assert top[0] > 50

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomKeys(0)
        with pytest.raises(ValueError):
            ZipfianKeys(0)
        with pytest.raises(ValueError):
            ZipfianKeys(10, theta=1.5)

    def test_value_for(self):
        v = value_for(b"\x00\x00\x00\x01", 4096)
        assert isinstance(v, ValueRef)
        assert v.size == 4096
        raw = value_for(b"\x00\x00\x00\x01", 16, materialized=True)
        assert isinstance(raw, bytes) and len(raw) == 16

    def test_iter_protocol(self):
        g = SequentialKeys()
        it = iter(g)
        assert next(it) == b"\x00\x00\x00\x00"


class TestSpecs:
    def test_table_iv_shapes(self):
        assert WORKLOADS["A"].kind == "fillrandom"
        assert WORKLOADS["B"].write_ratio == pytest.approx(0.9)
        assert WORKLOADS["C"].read_ratio == pytest.approx(0.2)
        assert WORKLOADS["D"].seek_nexts == 1024
        assert WORKLOADS["D"].fill_bytes == 20 * 1024 ** 3
        for spec in WORKLOADS.values():
            assert spec.key_size == 4
            assert spec.value_size == 4096

    def test_invalid_spec(self):
        from repro.workload import WorkloadSpec
        with pytest.raises(ValueError):
            WorkloadSpec(name="X", kind="mystery")


class TestDrivers:
    def test_fillrandom_runs_for_duration(self):
        env = Environment()
        db, _, _ = small_db(env)
        cfg = DriverConfig(duration=0.05, key_space=10_000, value_size=64,
                           batch_size=8)
        drv = FillRandomDriver(env, db, cfg)
        p = drv.start()
        env.run(until=p)
        assert drv.write_ops > 0
        assert drv.write_bytes == drv.write_ops * (4 + 64 + 8)
        assert drv.write_meter.total == drv.write_ops

    def test_readwhilewriting_ratio(self):
        env = Environment()
        db, _, _ = small_db(env)
        cfg = DriverConfig(duration=0.1, key_space=1000, value_size=64,
                           batch_size=8)
        drv = ReadWhileWritingDriver(env, db, cfg, write_ratio=0.9,
                                     read_ratio=0.1)
        p = drv.start()
        env.run(until=p)
        env.run(until=env.now + 0.01)  # let the reader notice _done
        assert drv.write_ops > 0 and drv.read_ops > 0
        ratio = drv.read_ops / drv.write_ops
        assert ratio == pytest.approx(1 / 9, rel=0.5)

    def test_readwhilewriting_validation(self):
        env = Environment()
        db, _, _ = small_db(env)
        cfg = DriverConfig(duration=0.1)
        with pytest.raises(ValueError):
            ReadWhileWritingDriver(env, db, cfg, write_ratio=0, read_ratio=1)

    def test_seekrandom_counts_entries(self):
        env = Environment()
        db, _, _ = small_db(env)
        cfg = DriverConfig(duration=10.0, key_space=500, value_size=64,
                           batch_size=16)
        fill_p = fill_database(env, db, total_bytes=100_000, config=cfg)
        env.run(until=fill_p)
        drv = SeekRandomDriver(env, db, cfg, nexts_per_seek=32, max_seeks=5)
        p = drv.start()
        env.run(until=p)
        assert drv.seeks == 5
        assert drv.entries_scanned > 0
        assert drv.read_ops == drv.entries_scanned + drv.seeks

    def test_fill_database_loads_bytes(self):
        env = Environment()
        db, _, _ = small_db(env)
        cfg = DriverConfig(duration=1.0, key_space=100_000, value_size=64,
                           batch_size=16)
        p = fill_database(env, db, total_bytes=50_000, config=cfg)
        env.run(until=p)
        assert db.stats.user_write_bytes >= 50_000
