"""Regression: pin the skew the cluster's client population relies on.

``ZipfianKeys`` is documented (and now used) as an op-agnostic skewed key
stream — the multi-tenant population draws *writes* from it, so its mass
concentration is a load-bearing property: hot-shard detection and the
isolation tests assume a theta=0.99 stream puts a large, stable fraction
of ops on the top 1% of keys.  These tests pin that distribution (and
HotspotKeys' two-tier analogue) so a sampler change can't silently turn
skewed traffic uniform.
"""

import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.workload import HotspotKeys, ZipfianKeys  # noqa: E402

N = 20_000
KEY_SPACE = 10_000


def _top_fraction_mass(counts: Counter, total: int, frac: float) -> float:
    """Mass captured by the most-popular ``frac`` of the key space."""
    top = max(1, int(KEY_SPACE * frac))
    return sum(c for _, c in counts.most_common(top)) / total


def test_zipfian_top1pct_mass_pinned():
    keys = ZipfianKeys(KEY_SPACE, theta=0.99, seed=42)
    counts = Counter(keys.next_key() for _ in range(N))
    mass = _top_fraction_mass(counts, N, 0.01)
    # YCSB zipfian theta=0.99 over 10k keys: the top 1% of keys carry a
    # bit over half the mass.  Pin a band wide enough for sampler noise,
    # tight enough that drifting toward uniform (top-1% mass ~= 1%) or
    # degenerate point mass (~100%) fails loudly.
    assert 0.45 <= mass <= 0.75, f"top-1% mass {mass:.3f} out of band"


def test_zipfian_rank_ordering_and_range():
    keys = ZipfianKeys(KEY_SPACE, theta=0.99, seed=7)
    counts = Counter(int.from_bytes(keys.next_key(), "big")
                     for _ in range(N))
    assert all(0 <= k < KEY_SPACE for k in counts)
    # rank 0 is the hottest key and beats the tail decisively
    hottest = counts.most_common(1)[0][0]
    assert hottest == 0
    tail_avg = sum(c for k, c in counts.items() if k >= KEY_SPACE // 2)
    assert counts[0] > 10 * max(1, tail_avg / (KEY_SPACE // 2))


def test_zipfian_seed_stable():
    a = ZipfianKeys(KEY_SPACE, theta=0.99, seed=11)
    b = ZipfianKeys(KEY_SPACE, theta=0.99, seed=11)
    assert [a.next_key() for _ in range(500)] == [
        b.next_key() for _ in range(500)]


def test_hotspot_mass_lands_on_hot_set():
    keys = HotspotKeys(KEY_SPACE, hot_fraction=0.01, hot_mass=0.9, seed=3)
    hot_count = keys.hot_count
    hits = sum(1 for _ in range(N)
               if int.from_bytes(keys.next_key(), "big") < hot_count)
    mass = hits / N
    assert 0.87 <= mass <= 0.93, f"hot-set mass {mass:.3f} not ~0.9"
