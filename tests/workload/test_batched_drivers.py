"""Acceptance tests for driver-side event batching (``driver_batch``).

``driver_batch=1`` is the bit-exact reference trajectory (pinned by
tests/bench/test_golden_trajectory.py).  ``driver_batch=N`` lets a driver
issue N logical op groups per scheduled wakeup, cutting kernel events per
simulated second; the contract (MODEL.md) is that aggregate metrics stay
within a small tolerance of the reference while the event count drops.

Tolerances here are set from measured deltas (~6% ops at batch=4 on the
mini profiles) with headroom, not wished-for bounds: batching coarsens
when group commits land relative to memtable fills, so trajectories
legitimately diverge a little.
"""

import dataclasses

import pytest

from repro.bench import RunSpec, mini_profile, run_workload


def _run(workload: str, scale: int, driver_batch: int):
    profile = mini_profile(scale)
    if driver_batch != 1:
        profile = dataclasses.replace(profile, driver_batch=driver_batch)
    return run_workload(
        RunSpec("kvaccel", workload, 1, rollback="disabled"), profile)


def _rel(new: float, ref: float) -> float:
    return abs(new - ref) / max(abs(ref), 1e-9)


def test_fillrandom_batch4_within_tolerance():
    ref = _run("A", 128, 1)
    batched = _run("A", 128, 4)
    assert _rel(batched.write_ops, ref.write_ops) < 0.10
    assert _rel(batched.write_throughput_ops, ref.write_throughput_ops) < 0.10
    assert batched.read_ops == ref.read_ops == 0
    assert batched.duration == pytest.approx(ref.duration, rel=0.01)
    # The point of the knob: strictly fewer kernel events for the same
    # simulated horizon.
    assert (batched.extra["events_processed"]
            < ref.extra["events_processed"])


def test_readwhilewriting_batch2_within_tolerance():
    ref = _run("B", 256, 1)
    batched = _run("B", 256, 2)
    assert _rel(batched.write_ops, ref.write_ops) < 0.05
    # The paced reader re-targets its read:write ratio per wakeup, so its
    # op count moves more than the writer's under amortisation.
    assert _rel(batched.read_ops, ref.read_ops) < 0.15
    assert batched.duration == pytest.approx(ref.duration, rel=0.01)


def test_readwhilewriting_batch4_survives_compaction_races():
    """Regression: back-to-back batched reads interleave differently with
    compaction completions and used to hit FsError when a lookup's SST was
    deleted between two charged reads (repro.lsm.db._get_from_ssts)."""
    result = _run("B", 256, 4)
    assert result.write_ops > 0
    assert result.read_ops > 0


def test_batch1_knob_matches_default_profile():
    """driver_batch=1 passed explicitly is the same config as the default
    (the knob has no effect until it exceeds one)."""
    base = mini_profile(256)
    explicit = dataclasses.replace(base, driver_batch=1)
    assert explicit == base
