"""Tests for trace record/replay."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_db  # noqa: E402

from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402
from repro.workload import Trace, TraceOp, TraceRecorder, TraceReplayDriver  # noqa: E402


def sample_trace():
    return Trace([
        TraceOp("put", encode_key(1), value_size=64),
        TraceOp("put", encode_key(2), value_size=64, think_us=10.0),
        TraceOp("get", encode_key(1)),
        TraceOp("scan", encode_key(1), count=2),
        TraceOp("del", encode_key(2)),
        TraceOp("get", encode_key(2)),
    ])


class TestTraceFormat:
    def test_roundtrip(self):
        t = sample_trace()
        restored = Trace.loads(t.dumps())
        assert restored.ops == t.ops

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n\nput 00000001 64\nget 00000001\n"
        t = Trace.loads(text)
        assert len(t) == 2
        assert t.ops[0].op == "put"

    def test_bad_lines_rejected(self):
        with pytest.raises(ValueError):
            Trace.loads("frobnicate 00000001")
        with pytest.raises(ValueError):
            Trace.loads("put 00000001")          # missing size
        with pytest.raises(ValueError):
            Trace.loads("put zz 64")             # bad hex

    def test_file_roundtrip(self, tmp_path):
        t = sample_trace()
        p = tmp_path / "ops.trace"
        t.save(p)
        assert Trace.load(p).ops == t.ops

    def test_op_validation(self):
        with pytest.raises(ValueError):
            TraceOp("nope", b"k")
        with pytest.raises(ValueError):
            TraceOp("scan", b"k", count=0)
        with pytest.raises(ValueError):
            TraceOp("put", b"k", value_size=-1)

    def test_op_counts(self):
        assert sample_trace().op_counts() == {
            "put": 2, "get": 2, "scan": 1, "del": 1}


class TestRecorder:
    def test_records_while_forwarding(self):
        env = Environment()
        db, _, _ = small_db(env)
        rec = TraceRecorder(db)

        def gen():
            yield from rec.put(encode_key(5), b"v" * 32)
            got = yield from rec.get(encode_key(5))
            assert got == b"v" * 32
            out = yield from rec.scan(encode_key(0), 3)
            assert out
            yield from rec.delete(encode_key(5))

        run(env, gen())
        assert rec.trace.op_counts() == {"put": 1, "get": 1, "scan": 1,
                                         "del": 1}
        assert rec.trace.ops[0].value_size == 32

    def test_records_batches(self):
        env = Environment()
        db, _, _ = small_db(env)
        rec = TraceRecorder(db)
        pairs = [(encode_key(i), b"x" * 16) for i in range(10)]
        run(env, rec.put_batch(pairs))
        assert rec.trace.op_counts() == {"put": 10}


class TestReplay:
    def test_replay_reproduces_state(self):
        env = Environment()
        db, _, _ = small_db(env)
        trace = Trace([TraceOp("put", encode_key(i), value_size=32)
                       for i in range(100)]
                      + [TraceOp("del", encode_key(7))])
        drv = TraceReplayDriver(env, db, trace, batch_size=8)
        env.run(until=drv.start())
        assert drv.write_ops == 101
        assert run(env, db.get(encode_key(3))) is not None
        assert run(env, db.get(encode_key(7))) is None

    def test_record_then_replay_identical_results(self):
        # capture a trace on one DB, replay onto a fresh one, compare
        env1 = Environment()
        db1, _, _ = small_db(env1)
        rec = TraceRecorder(db1)

        def workload():
            import random
            rng = random.Random(3)
            for i in range(300):
                k = encode_key(rng.randrange(50))
                if rng.random() < 0.8:
                    yield from rec.put(k, b"v%d" % i)
                else:
                    yield from rec.delete(k)

        run(env1, workload())

        env2 = Environment()
        db2, _, _ = small_db(env2)
        drv = TraceReplayDriver(env2, db2, rec.trace,
                                value_size_override=8)
        env2.run(until=drv.start())
        # same live key set on both sides
        s1 = run(env1, db1.scan(encode_key(0), 100))
        s2 = run(env2, db2.scan(encode_key(0), 100))
        assert [k for k, _ in s1] == [k for k, _ in s2]

    def test_think_time_replay(self):
        env = Environment()
        db, _, _ = small_db(env)
        trace = Trace([
            TraceOp("put", encode_key(1), value_size=8, think_us=50_000),
            TraceOp("put", encode_key(2), value_size=8, think_us=50_000),
        ])
        drv = TraceReplayDriver(env, db, trace, honor_think_time=True,
                                batch_size=1)
        env.run(until=drv.start())
        assert env.now >= 0.1  # two 50 ms gaps honored

    def test_replay_counts_scans(self):
        env = Environment()
        db, _, _ = small_db(env)
        fill = Trace([TraceOp("put", encode_key(i), value_size=8)
                      for i in range(20)])
        env.run(until=TraceReplayDriver(env, db, fill).start())
        t = Trace([TraceOp("scan", encode_key(0), count=10)])
        drv = TraceReplayDriver(env, db, t)
        env.run(until=drv.start())
        assert drv.read_ops == 11  # seek + 10 entries
