"""WAL replay is idempotent: recovering twice equals recovering once.

The reopen path (MANIFEST replay -> orphan GC -> WAL replay) must be a
fixed point: a second crash immediately after recovery — before any new
write — may not change the recovered state.  This is what makes repeated
crash/restart loops safe in practice.
"""

import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_db, small_options  # noqa: E402

from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 31),
                  st.binary(min_size=1, max_size=96)),
        st.tuples(st.just("delete"), st.integers(0, 31), st.just(b"")),
    ),
    min_size=1,
    max_size=60,
)


def _fingerprint(db):
    """Synchronous snapshot of everything recovery rebuilds.

    Taken without yielding, so background flush/compaction cannot move
    under it between the two recoveries being compared.
    """
    levels = tuple(
        tuple(sorted(f.number for f in level))
        for level in db.versions.current.levels
    )
    mem = tuple(db.mem.entries())
    imm = tuple(tuple(m.entries()) for m in db.imm)
    return {
        "levels": levels,
        "mem": mem,
        "imm": imm,
        "seq": db._seq,
        "wal_durable": db.wal.durable_bytes,
    }


@SETTINGS
@given(ops=_OPS)
def test_double_recovery_is_identical_to_single(ops):
    env = Environment()
    db, _, _ = small_db(env)

    def driver():
        for op, k, v in ops:
            if op == "put":
                yield from db.put(encode_key(k), v)
            else:
                yield from db.delete(encode_key(k))
        first = yield from db.crash_and_recover()
        fp1 = _fingerprint(db)
        second = yield from db.crash_and_recover()
        fp2 = _fingerprint(db)
        return first, fp1, second, fp2

    first, fp1, second, fp2 = run(env, driver())
    assert fp1 == fp2
    # The second crash happens with an empty WAL buffer and no new writes:
    # nothing un-durable exists to lose.
    assert second["lost_buffered_records"] == 0
    assert second["replayed_records"] == first["replayed_records"]
    db.close()


@SETTINGS
@given(ops=_OPS, extra_crashes=st.integers(min_value=1, max_value=3))
def test_repeated_recovery_preserves_readable_contents(ops, extra_crashes):
    """N extra crash/recover rounds never change what a scan returns."""
    env = Environment()
    # Tiny WAL groups so most of the workload is durable and replay has
    # real work to redo each round.
    db, _, _ = small_db(env, small_options(wal_group_commit_bytes=256))

    def driver():
        for op, k, v in ops:
            if op == "put":
                yield from db.put(encode_key(k), v)
            else:
                yield from db.delete(encode_key(k))
        yield from db.crash_and_recover()
        yield from db.wait_for_quiesce()
        baseline = yield from db.scan(encode_key(0), 64)
        for _ in range(extra_crashes):
            yield from db.crash_and_recover()
            yield from db.wait_for_quiesce()
            again = yield from db.scan(encode_key(0), 64)
            assert again == baseline
        return baseline

    run(env, driver())
    db.close()
