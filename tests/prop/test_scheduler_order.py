"""Property test: the calendar queue is order-identical to a binary heap.

For *arbitrary* interleavings of pushes (timed, zero-delay/now-lane,
priority-0 interrupt, far-future, +inf) and pops, a forced-calendar
:class:`~repro.sim.calqueue.CalendarQueue` must dequeue exactly the same
``(time, priority, seq)`` sequence as a plain ``heapq`` over the same
entries — through upgrades, bucket page turns, far-heap migration and
resizes.  The only constraint the kernel guarantees (and the strategy
must respect) is that now-lane entries carry the current clock value and
seq strictly increases.
"""

import heapq
import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.sim.calqueue import CalendarQueue  # noqa: E402

INF = float("inf")

# op := ("push", delay-ticks, priority) | ("far", mega-ticks)
#     | ("now",) | ("inf",) | ("pop", k)
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 2000),
                  st.sampled_from([1, 1, 1, 0])),
        st.tuples(st.just("far"), st.integers(1, 50)),
        st.tuples(st.just("now")),
        st.tuples(st.just("inf")),
        st.tuples(st.just("pop"), st.integers(1, 8)),
    ),
    min_size=1, max_size=300)


def _drive(ops, force):
    """Replay ``ops`` against a CalendarQueue through the kernel's push
    seam; return the dequeued entry sequence."""
    q = CalendarQueue(force=force)
    now = 0.0
    seq = 0
    pending = 0
    popped = []

    def seam_push(entry):
        if q._cal:
            q.push(entry)
        else:
            heapq.heappush(q._heap, entry)
            if len(q._heap) > q._upgrade_at:
                q._consider_upgrade()

    for op in ops:
        kind = op[0]
        if kind == "push":
            _k, ticks, prio = op
            seam_push((now + ticks * 0.125, prio, seq, None))
            seq += 1
            pending += 1
        elif kind == "far":
            seam_push((now + op[1] * 1e6, 1, seq, None))
            seq += 1
            pending += 1
        elif kind == "inf":
            seam_push((INF, 1, seq, None))
            seq += 1
            pending += 1
        elif kind == "now":
            # The kernel's zero-delay route: timestamped exactly *now*.
            q.push_now((now, 1, seq, None))
            seq += 1
            pending += 1
        else:
            for _ in range(min(op[1], pending)):
                entry = q._pop_entry()
                popped.append(entry[:3])
                pending -= 1
                t = entry[0]
                if t > now:
                    now = t
    while pending:
        entry = q._pop_entry()
        popped.append(entry[:3])
        pending -= 1
        if entry[0] > now:
            now = entry[0]
    assert len(q) == 0
    return popped


@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops_strategy)
def test_calendar_queue_matches_heap_order(ops):
    assert _drive(ops, force="cal") == _drive(ops, force="heap")


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops_strategy)
def test_auto_mode_matches_heap_order(ops):
    assert _drive(ops, force=None) == _drive(ops, force="heap")


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops_strategy)
def test_popped_times_never_regress(ops):
    # Within one drive, dequeue times are nondecreasing: the queue never
    # releases an entry earlier than one it already released (entries are
    # never pushed into the past — ``now`` tracks the last popped time).
    popped = _drive(ops, force="cal")
    times = [t for t, _p, _s in popped]
    assert times == sorted(times)
