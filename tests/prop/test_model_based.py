"""Model-based property tests: full DB stacks vs a dict reference model."""

import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_db, small_kvaccel, small_options  # noqa: E402

from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402

# op := (kind, key, value-byte) with kind in {put, delete, get, scan}
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["put", "put", "put", "delete", "get", "scan"]),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1, max_size=120,
)

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow,
                                           HealthCheck.data_too_large])


def _apply_ops(env, db, ops, stall_pattern=None):
    """Drive ops against the DB and a dict model, checking as we go."""
    model = {}

    def gen():
        for i, (kind, k, vb) in enumerate(ops):
            if stall_pattern is not None and hasattr(db, "detector"):
                db.detector.stall_condition = stall_pattern(i)
            key = encode_key(k)
            if kind == "put":
                v = bytes([vb]) * 24 + b":%d" % i
                yield from db.put(key, v)
                model[key] = v
            elif kind == "delete":
                yield from db.delete(key)
                model.pop(key, None)
            elif kind == "get":
                got = yield from db.get(key)
                assert got == model.get(key), (i, k)
            else:  # scan
                got = yield from db.scan(key, 8)
                expected = [(mk, model[mk]) for mk in sorted(model)
                            if mk >= key][:8]
                assert got == expected, (i, k)
        if hasattr(db, "detector"):
            db.detector.stall_condition = False

    run(env, gen())
    return model


def _final_check(env, db, model):
    for k in range(61):
        key = encode_key(k)
        assert run(env, db.get(key)) == model.get(key), k
    full = run(env, db.scan(encode_key(0), 100))
    assert full == [(mk, model[mk]) for mk in sorted(model)]


@SETTINGS
@given(ops_strategy)
def test_dbimpl_matches_dict_model(ops):
    env = Environment()
    db, _, _ = small_db(env)
    model = _apply_ops(env, db, ops)
    run(env, db.wait_for_quiesce())
    _final_check(env, db, model)
    db.close()


@SETTINGS
@given(ops_strategy, st.integers(min_value=0, max_value=7))
def test_kvaccel_matches_dict_model_under_stall_flapping(ops, phase):
    """The dual-interface store must be indistinguishable from a dict even
    when the stall signal flips arbitrarily between operations."""
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="disabled")
    db.detector.stop()
    stall = lambda i: ((i + phase) // 3) % 2 == 0  # noqa: E731
    model = _apply_ops(env, db, ops, stall_pattern=stall)
    _final_check(env, db, model)
    db.close()


@SETTINGS
@given(ops_strategy)
def test_kvaccel_rollback_preserves_model(ops):
    """After a full rollback the Main-LSM alone must serve the model."""
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="disabled")
    db.detector.stop()
    stall = lambda i: i % 2 == 0  # noqa: E731
    model = _apply_ops(env, db, ops, stall_pattern=stall)
    run(env, db.final_rollback())
    assert ssd.kv.is_empty
    assert len(db.metadata) == 0
    run(env, db.wait_for_quiesce())
    _final_check(env, db, model)
    db.close()


@SETTINGS
@given(st.lists(st.tuples(st.integers(0, 40), st.booleans()),
                min_size=1, max_size=80))
def test_host_crash_durability_contract(writes):
    """A write survives a host crash iff it reached an SST or a flushed WAL
    group; newest surviving version wins.  Random writes with random sync
    points, crash, recover, compare against the durable model."""
    env = Environment()
    db, _, _ = small_db(env, small_options(wal_group_commit_bytes=1 << 30))
    durable = {}
    volatile = {}

    def gen():
        for i, (k, sync_after) in enumerate(writes):
            key = encode_key(k)
            v = b"%d:%d" % (k, i)
            yield from db.put(key, v)
            volatile[key] = v
            if sync_after:
                yield from db.wal.sync()
                durable.update(volatile)
                volatile.clear()
        yield from db.crash_and_recover()
        yield from db.wait_for_quiesce()

    run(env, gen())
    # Note: a memtable switch also syncs the WAL, so `durable` is a lower
    # bound; keys in `volatile` may or may not have survived, but any that
    # did must carry their newest pre-crash value.
    for key, v in durable.items():
        if key not in volatile:  # not overwritten by a maybe-lost write
            assert run(env, db.get(key)) == v
    for key, v in volatile.items():
        got = run(env, db.get(key))
        assert got in (v, durable.get(key), None)
    db.close()


@SETTINGS
@given(ops_strategy)
def test_kvaccel_recovery_preserves_model(ops):
    """Crash-recovery (metadata loss) must never lose or resurrect data."""
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="disabled")
    db.detector.stop()
    stall = lambda i: i % 3 != 0  # noqa: E731
    model = _apply_ops(env, db, ops, stall_pattern=stall)
    run(env, db.recover())
    run(env, db.wait_for_quiesce())
    _final_check(env, db, model)
    db.close()
