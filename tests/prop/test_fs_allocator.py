"""Property tests for the file-layer extent allocator.

Invariants: live extents never overlap, deleted space is reusable, and
file sizes always equal the sum of their extents — under arbitrary
create/append/delete interleavings.
"""

import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_device  # noqa: E402

from repro.lsm import FileSystem, FsError  # noqa: E402
from repro.sim import Environment  # noqa: E402

# op := ("create"|"append"|"delete", file-id, size)
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["create", "append", "append", "delete"]),
              st.integers(0, 7),
              st.integers(1, 50_000)),
    min_size=1, max_size=60)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops_strategy)
def test_extents_never_overlap_and_sizes_add_up(ops):
    env = Environment()
    fs = FileSystem(small_device(env))
    live: dict[int, object] = {}

    def gen():
        for kind, fid, size in ops:
            name = f"f{fid}"
            if kind == "create":
                if not fs.exists(name):
                    live[fid] = fs.create(name)
            elif kind == "append":
                if fid in live:
                    yield from fs.append(live[fid], size)
            else:  # delete
                if fid in live:
                    fs.delete(name)
                    del live[fid]

    run(env, gen())

    # 1. no two live extents overlap
    extents = []
    for f in live.values():
        extents.extend(f.extents)
    extents.sort()
    for (o1, n1), (o2, _n2) in zip(extents, extents[1:]):
        assert o1 + n1 <= o2, f"overlap: ({o1},{n1}) vs ({o2},...)"

    # 2. file sizes equal their extent sums
    for f in live.values():
        assert f.size == sum(n for _o, n in f.extents)

    # 3. accounting matches
    assert fs.used_bytes == sum(f.size for f in live.values())


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(1, 30_000), min_size=2, max_size=20))
def test_deleted_space_is_reused(sizes):
    """Writing, deleting, and rewriting the same sizes must not grow the
    allocation cursor the second time (first-fit reuse)."""
    env = Environment()
    fs = FileSystem(small_device(env))

    def write_all(gen_id):
        for i, size in enumerate(sizes):
            f = fs.create(f"g{gen_id}-{i}")
            yield from fs.append(f, size)

    run(env, write_all(0))
    cursor_after_first = fs._cursor
    for i in range(len(sizes)):
        fs.delete(f"g0-{i}")
    run(env, write_all(1))
    assert fs._cursor == cursor_after_first  # perfectly recycled
