"""Property tests for the retry/backoff stack (repro.resil.retry).

Three contracts, checked over generated seeds and policies:

* the backoff schedule is a pure function of (policy, seed) — replaying a
  seed (including via ``REPRO_FAULT_SEED``) reproduces it bit-for-bit;
* every delay respects the exponential envelope, ``max_delay`` and the
  call deadline;
* a run whose transient faults are absorbed by retries ends in the same
  Dev-LSM state as a fault-free run — retries change timing, never data.
"""

import os
import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_hybrid  # noqa: E402

from repro.faults.plan import NthOccurrencePlan  # noqa: E402
from repro.faults.registry import FAIL, FaultAction, FaultRegistry  # noqa: E402
from repro.resil import (  # noqa: E402
    DeviceError,
    RetryExecutor,
    RetryPolicy,
    TRANSIENT,
    backoff_schedule,
)
from repro.sim import Environment  # noqa: E402

seeds = st.integers(min_value=0, max_value=2**32 - 1)

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(2, 8),
    base_delay=st.floats(1e-6, 1e-3),
    max_delay=st.floats(1e-3, 1e-1),
    multiplier=st.floats(1.0, 4.0),
    jitter=st.floats(0.0, 1.0),
)


@settings(max_examples=60, deadline=None)
@given(seeds, policies)
def test_schedule_is_bit_deterministic(seed, policy):
    a = backoff_schedule(policy, seed=seed, n=policy.max_attempts)
    b = backoff_schedule(policy, seed=seed, n=policy.max_attempts)
    assert a == b


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_env_var_seed_matches_explicit_seed(seed):
    policy = RetryPolicy(max_attempts=5)
    env = Environment()
    old = os.environ.get("REPRO_FAULT_SEED")
    os.environ["REPRO_FAULT_SEED"] = str(seed)
    try:
        via_env = RetryExecutor(env, policy, name="retry")
    finally:
        if old is None:
            os.environ.pop("REPRO_FAULT_SEED", None)
        else:
            os.environ["REPRO_FAULT_SEED"] = old
    explicit = RetryExecutor(Environment(), policy, seed=seed, name="retry")
    draws = 6
    assert [via_env.rng.random() for _ in range(draws)] == \
           [explicit.rng.random() for _ in range(draws)]


@settings(max_examples=60, deadline=None)
@given(seeds, policies)
def test_delays_respect_the_envelope(seed, policy):
    sched = backoff_schedule(policy, seed=seed, n=policy.max_attempts)
    for attempt, delay in enumerate(sched):
        ideal = min(policy.base_delay * policy.multiplier ** attempt,
                    policy.max_delay)
        span = policy.jitter * ideal
        assert 0.0 <= delay <= policy.max_delay * (1.0 + policy.jitter) + 1e-12
        assert abs(delay - ideal) <= span + 1e-12


@settings(max_examples=40, deadline=None)
@given(seeds,
       st.floats(1e-4, 5e-2),
       st.integers(2, 10))
def test_backoff_never_sleeps_past_the_deadline(seed, deadline, attempts):
    policy = RetryPolicy(max_attempts=attempts, base_delay=1e-4,
                         max_delay=1e-2, deadline=deadline)
    env = Environment()
    ex = RetryExecutor(env, policy, seed=seed)

    def always_failing():
        yield env.timeout(0.0)
        raise DeviceError(TRANSIENT, site="kv.put", detail="flap")

    outcome = []

    def proc():
        try:
            yield from ex.call(always_failing, site="kv.put")
        except DeviceError:
            outcome.append(env.now)

    env.process(proc())
    env.run()
    # Zero-cost attempts: all elapsed time is backoff, which the deadline
    # caps.  The call must also actually fail.
    assert outcome and outcome[0] <= deadline + 1e-12


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds, st.sets(st.integers(1, 6), min_size=1, max_size=6))
def test_retried_transients_leave_devlsm_identical(seed, fault_occurrences):
    def run_stack(with_faults):
        env = Environment()
        if with_faults:
            reg = FaultRegistry(seed=seed).install(env)
            for n in fault_occurrences:
                reg.arm("kv.put.submit", NthOccurrencePlan(n),
                        FaultAction(FAIL, note="transient"))
        ssd, _ = small_hybrid(env)
        # Up to 6 consecutive submit occurrences can fail before one put
        # succeeds, so 8 attempts always absorb the storm.
        ssd.kv.retry = RetryExecutor(
            env,
            RetryPolicy(max_attempts=8, base_delay=1e-5, max_delay=1e-4),
            seed=seed, name="kv")

        def gen():
            state = {}
            for i in range(10):
                key, value = b"k%02d" % i, b"v%d" % (i * 7)
                yield from ssd.kv.put(key, i + 1, value)
                state[key] = value
            got = {}
            for key in state:
                entry = yield from ssd.kv.get(key)   # internal entry tuple
                got[key] = None if entry is None else entry[3]
            return state, got

        state, got = run(env, gen())
        assert got == state                      # every ack is readable
        return got, ssd.kv.retry.stats.retries

    clean, _ = run_stack(with_faults=False)
    faulty, retries = run_stack(with_faults=True)
    # Retries change timing, never data: both runs end with an identical
    # Dev-LSM view, and the faulty run really did retry.
    assert faulty == clean
    assert retries >= 1