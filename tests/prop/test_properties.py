"""Property-based tests (hypothesis) for core invariants."""

import sys
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.lsm import (
    BloomFilter,
    DictMemTable,
    SSTable,
    SkipListMemTable,
    decode_block,
    decode_varint,
    encode_block,
    encode_varint,
    merging_iterator,
)
from repro.metrics import LatencyHistogram
from repro.types import KIND_DELETE, encode_key, entry_size, make_entry

keys = st.integers(min_value=0, max_value=500)
values = st.binary(min_size=0, max_size=64)


# ---------------------------------------------------------------- codec
@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_varint_roundtrip(n):
    val, pos = decode_varint(encode_varint(n))
    assert val == n


@given(st.lists(st.tuples(keys, values), min_size=0, max_size=40))
def test_block_codec_roundtrip(pairs):
    seen = {}
    for seq, (k, v) in enumerate(pairs):
        seen[k] = make_entry(encode_key(k), seq + 1, v)
    entries = [seen[k] for k in sorted(seen)]
    assert decode_block(encode_block(entries)) == entries


# ------------------------------------------------------------- memtables
@given(st.lists(st.tuples(keys, values), min_size=0, max_size=120))
def test_memtables_agree_with_dict_model(ops):
    d, s = DictMemTable(), SkipListMemTable()
    model = {}
    for seq, (k, v) in enumerate(ops):
        e = make_entry(encode_key(k), seq + 1, v)
        d.add(e)
        s.add(e)
        model[encode_key(k)] = e
    assert d.entries() == s.entries()
    expected = [model[k] for k in sorted(model)]
    assert d.entries() == expected
    assert d.approximate_bytes == sum(entry_size(e) for e in model.values())
    for k in model:
        assert d.get(k) == s.get(k) == model[k]


@given(st.lists(st.tuples(keys, values), min_size=1, max_size=80), keys)
def test_memtable_iter_from_matches_sorted_slice(ops, start):
    mt = SkipListMemTable()
    model = {}
    for seq, (k, v) in enumerate(ops):
        e = make_entry(encode_key(k), seq + 1, v)
        mt.add(e)
        model[encode_key(k)] = e
    start_key = encode_key(start)
    expected = [model[k] for k in sorted(model) if k >= start_key]
    assert list(mt.iter_from(start_key)) == expected


# --------------------------------------------------------------- bloom
@given(st.sets(keys, min_size=1, max_size=100))
def test_bloom_no_false_negatives(key_set):
    bf = BloomFilter(len(key_set), bits_per_key=10)
    encoded = [encode_key(k) for k in key_set]
    bf.add_all(encoded)
    assert all(bf.may_contain(k) for k in encoded)


# --------------------------------------------------------------- sstable
@given(st.dictionaries(keys, values, min_size=1, max_size=60),
       st.integers(min_value=64, max_value=2048))
def test_sstable_probe_total(model, block_size):
    entries = [make_entry(encode_key(k), i + 1, model[k])
               for i, k in enumerate(sorted(model))]
    t = SSTable(1, entries, block_size=block_size)
    # every present key probes to its entry; block accounting is complete
    for e in entries:
        r = t.probe(e[0])
        assert r.entry == e
    assert sum(t.block_bytes(b) for b in range(t.num_blocks)) == t.data_bytes
    # absent keys never return a wrong entry
    for k in range(501, 520):
        assert t.probe(encode_key(k)).entry is None


@given(st.dictionaries(keys, values, min_size=1, max_size=60), keys)
def test_sstable_iter_from_is_sorted_suffix(model, start):
    entries = [make_entry(encode_key(k), i + 1, model[k])
               for i, k in enumerate(sorted(model))]
    t = SSTable(1, entries, block_size=256)
    got = list(t.iter_from(encode_key(start)))
    assert got == [e for e in entries if e[0] >= encode_key(start)]


# ------------------------------------------------------- merging iterator
@given(st.lists(st.lists(st.tuples(keys, values), max_size=30),
                min_size=0, max_size=6))
def test_merging_iterator_equals_dict_model(source_specs):
    seq = 0
    sources = []
    model = {}
    for spec in source_specs:
        per_key = {}
        for k, v in spec:
            seq += 1
            per_key[encode_key(k)] = make_entry(encode_key(k), seq, v)
        src = [per_key[k] for k in sorted(per_key)]
        sources.append(src)
        for k, e in per_key.items():
            cur = model.get(k)
            if cur is None or e[1] > cur[1]:
                model[k] = e
    expected = [model[k] for k in sorted(model)]
    got = list(merging_iterator(sources))
    assert got == expected


@given(st.lists(st.lists(st.tuples(keys, st.one_of(st.none(), values)),
                         max_size=25), min_size=1, max_size=5))
def test_merging_iterator_tombstones_hide_keys(source_specs):
    seq = 0
    sources = []
    model = {}
    for spec in source_specs:
        per_key = {}
        for k, v in spec:
            seq += 1
            kind = KIND_DELETE if v is None else 1
            per_key[encode_key(k)] = make_entry(encode_key(k), seq, v, kind=kind)
        sources.append([per_key[k] for k in sorted(per_key)])
        for k, e in per_key.items():
            cur = model.get(k)
            if cur is None or e[1] > cur[1]:
                model[k] = e
    visible = [e for k, e in sorted(model.items()) if e[2] != KIND_DELETE]
    assert list(merging_iterator(sources)) == visible


# ------------------------------------------------------------ histogram
@given(st.lists(st.floats(min_value=0.01, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=300))
def test_histogram_percentiles_bounded_and_monotone(samples):
    h = LatencyHistogram()
    for v in samples:
        h.record(v)
    assert h.total_count == len(samples)
    ps = [h.percentile(p) for p in (0, 25, 50, 75, 90, 99, 100)]
    assert all(b >= a * 0.99 for a, b in zip(ps, ps[1:]))
    assert h.percentile(100) <= max(samples) * 1.05
    assert h.min == min(samples)
    assert h.max == max(samples)


# ----------------------------------------------------------------- ftl
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None,
          max_examples=30)
@given(st.lists(st.tuples(st.integers(0, 30), st.binary(min_size=1, max_size=4)),
                min_size=1, max_size=300))
def test_ftl_never_loses_live_data_and_never_double_maps(writes):
    from repro.device import Ftl, NandGeometry
    g = NandGeometry(channels=1, ways=1, blocks_per_way=12, pages_per_block=4,
                     page_size=4096)
    ftl = Ftl(g, split_fraction=0.5, op_fraction=0.2)
    model = {}
    for lpn, data in writes:
        ftl.write(lpn, data=data)
        model[lpn] = data
    # no two logical pages share a physical page
    ppns = list(ftl._l2p.values())
    assert len(ppns) == len(set(ppns))
    for lpn, data in model.items():
        assert ftl.read(lpn) == data
