"""Acceptance: a traced workload-A run produces a valid Chrome trace whose
stall spans match ``RunResult.stall_intervals`` (with StallReason), and
flush / compaction / rollback spans appear with correct nesting."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.bench.profiles import mini_profile  # noqa: E402
from repro.bench.runner import RunSpec, run_workload  # noqa: E402
from repro.obs import (  # noqa: E402
    Tracer,
    spans_from_chrome,
    to_chrome_trace,
    validate_chrome_trace,
)

PROFILE = mini_profile(256)
REASONS = {"memtable", "l0", "pending_bytes"}


@pytest.fixture(scope="module")
def rocksdb_traced():
    """Workload A on stall-prone RocksDB (Fig 11's baseline cell)."""
    tracer = Tracer()
    result = run_workload(RunSpec("rocksdb", "A", 1, slowdown=False),
                          PROFILE, tracer=tracer)
    return result, tracer


@pytest.fixture(scope="module")
def kvaccel_traced():
    """Workload A on KVACCEL with eager rollback (Fig 13's -E cell)."""
    tracer = Tracer()
    result = run_workload(RunSpec("kvaccel", "A", 1, rollback="eager"),
                          PROFILE, tracer=tracer)
    return result, tracer


def test_stall_spans_match_stall_intervals(rocksdb_traced):
    result, tracer = rocksdb_traced
    assert result.stall_intervals, "cell must actually stall"
    stall_spans = list(tracer.spans("stall"))
    assert len(stall_spans) == len(result.stall_intervals)
    for sp, (t0, t1) in zip(stall_spans, result.stall_intervals):
        assert sp.t0 == pytest.approx(t0)
        assert sp.t1 == pytest.approx(t1)
        assert sp.args["reason"] in REASONS
        assert sp.name == f"stall.{sp.args['reason']}"


def test_flush_and_compaction_spans_with_nesting(rocksdb_traced):
    result, tracer = rocksdb_traced
    flushes = list(tracer.spans("flush"))
    compactions = list(tracer.spans("compaction"))
    assert len(flushes) >= 1
    assert len(compactions) >= 1
    # span counts agree with the DB's own books; a compaction/flush still
    # in flight at run end is force-closed without completion args, so
    # completed spans (those carrying output args) match the stats exactly
    snapshot = result.extra["snapshot"]
    done_flushes = [s for s in flushes if "bytes" in (s.args or {})]
    done_compactions = [s for s in compactions
                        if "output_bytes" in (s.args or {})]
    assert len(done_flushes) == snapshot["flushes"]
    assert len(done_compactions) == snapshot["compactions"]
    assert len(flushes) <= snapshot["flushes"] + 1
    assert len(compactions) <= snapshot["compactions"] + 1
    # nesting: every completed flush contains at least one NAND program
    # issued by the same actor (the flusher process), inside its window
    nand = [s for s in tracer.spans("nand") if s.name == "nand.program"]
    for fl in done_flushes:
        nested = [s for s in nand
                  if s.actor == fl.actor
                  and s.t0 >= fl.t0 and s.t1 <= fl.t1]
        assert nested, f"flush span {fl!r} has no nested NAND program"
    for c in done_compactions:
        assert c.name.startswith("compaction[L")
        assert c.args["output_bytes"] >= 0


def test_kvaccel_rollback_spans_and_nesting(kvaccel_traced):
    result, tracer = kvaccel_traced
    assert result.extra["rollbacks"] >= 1, "cell must roll back"
    rollbacks = list(tracer.spans("rollback"))
    assert len(rollbacks) == result.extra["rollbacks"]
    kv_scans = [s for s in tracer.spans("kv") if s.name == "kv.bulk_scan"]
    for rb in rollbacks:
        assert rb.name == "rollback.eager"
        assert rb.args["entries"] >= 0
        # the bulky range scan runs inside the rollback window
        nested = [s for s in kv_scans
                  if s.t0 >= rb.t0 and s.t1 <= rb.t1]
        assert nested, f"rollback span {rb!r} has no nested bulk scan"
    # redirected writes show up as kv.put_batch spans
    assert any(s.name == "kv.put_batch" for s in tracer.spans("kv"))
    assert list(tracer.spans("devlsm")), "Dev-LSM activity must be traced"


def test_traced_run_exports_valid_chrome_json(kvaccel_traced):
    _result, tracer = kvaccel_traced
    doc = json.loads(json.dumps(to_chrome_trace(tracer, label="acceptance")))
    assert validate_chrome_trace(doc) == []
    spans = spans_from_chrome(doc)
    cats = {s["cat"] for s in spans}
    assert {"write", "wal", "flush", "kv", "nand", "pcie"} <= cats


def test_stall_breakdown_satellite(rocksdb_traced):
    """RunResult.stall_breakdown: per-reason counts/durations sum to the
    aggregate books."""
    result, _tracer = rocksdb_traced
    bd = result.stall_breakdown
    assert set(bd) == {"stalls", "stall_time", "slowdowns", "delayed_time"}
    assert sum(bd["stalls"].values()) == result.stall_events
    assert sum(bd["stall_time"].values()) == pytest.approx(
        result.total_stall_time)
    assert set(bd["stalls"]) <= REASONS
    assert all(t >= 0 for t in bd["stall_time"].values())


def test_stall_breakdown_slowdown_cell():
    """With slowdown enabled the delayed books get per-reason entries."""
    result = run_workload(RunSpec("rocksdb", "A", 1, slowdown=True), PROFILE)
    bd = result.stall_breakdown
    assert sum(bd["slowdowns"].values()) == result.slowdown_events
    assert sum(bd["delayed_time"].values()) == pytest.approx(
        result.total_delayed_time)
    assert set(bd["slowdowns"]) <= REASONS
