"""Tracer semantics: zero-cost when disabled, nesting across DES yields,
ring-buffer tail mode."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

import repro.obs.tracer as tracer_mod  # noqa: E402
from helpers import run, small_db, small_options  # noqa: E402
from repro.obs import SpanRecord, Tracer  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


def fill(env, db, n, value=b"x" * 256):
    def gen():
        for i in range(n):
            yield from db.put(encode_key(i), value)
    run(env, gen())


# -- zero-cost when disabled ------------------------------------------------
def test_disabled_tracer_allocates_no_span_objects(monkeypatch):
    created = []
    orig_init = SpanRecord.__init__

    def counting_init(self, *a, **kw):
        created.append(self)
        orig_init(self, *a, **kw)

    monkeypatch.setattr(tracer_mod.SpanRecord, "__init__", counting_init)
    env = Environment()
    db, _, _ = small_db(env)
    assert env.tracer is None
    fill(env, db, 300)
    db.close()
    assert created == []   # not a single span object on the untraced path


def test_traced_run_same_trajectory_as_untraced():
    """Probes are passive: with a tracer installed the simulation takes
    exactly the same trajectory (sim time, flush/compaction counts)."""
    def one_run(traced: bool):
        env = Environment()
        tr = Tracer().install(env) if traced else None
        db, _, _ = small_db(env)
        fill(env, db, 500)
        stats = (env.now, db.stats.flushes, db.stats.compactions,
                 db.write_controller.stall_events,
                 db.write_controller.total_stall_time)
        db.close()
        return stats, tr

    plain, _ = one_run(False)
    traced, tr = one_run(True)
    assert plain == traced
    assert tr.span_count > 0   # and the traced run actually recorded spans


# -- span nesting across generator yields -----------------------------------
def test_spans_nest_and_close_across_yields():
    env = Environment()
    tr = Tracer().install(env)

    def actor_a():
        outer = tr.begin("t", "outer")
        yield env.timeout(1.0)
        inner = tr.begin("t", "inner")
        yield env.timeout(1.0)
        tr.end(inner)
        yield env.timeout(1.0)
        tr.end(outer)

    def actor_b():
        yield env.timeout(0.5)
        sp = tr.begin("t", "other")
        yield env.timeout(2.0)
        tr.end(sp)

    env.process(actor_a(), name="proc-a")
    env.process(actor_b(), name="proc-b")
    env.run()

    spans = {s.name: s for s in tr.spans()}
    assert set(spans) == {"outer", "inner", "other"}
    # nesting depth is per actor, untouched by the interleaved process
    assert spans["outer"].depth == 0
    assert spans["inner"].depth == 1
    assert spans["other"].depth == 0
    # actors default to the emitting process name
    assert spans["outer"].actor == "proc-a"
    assert spans["other"].actor == "proc-b"
    # timestamps: inner contained in outer, all closed
    assert spans["outer"].t0 <= spans["inner"].t0
    assert spans["inner"].t1 <= spans["outer"].t1
    assert all(s.closed for s in spans.values())
    assert spans["inner"].duration == pytest.approx(1.0)
    assert spans["outer"].duration == pytest.approx(3.0)


def test_end_twice_raises():
    env = Environment()
    tr = Tracer().install(env)
    sp = tr.begin("t", "x", actor="a")
    tr.end(sp)
    with pytest.raises(RuntimeError):
        tr.end(sp)


def test_close_open_spans():
    env = Environment()
    tr = Tracer().install(env)
    tr.begin("t", "left-open", actor="a")
    assert tr.close_open_spans() == 1
    (sp,) = tr.spans()
    assert sp.closed and sp.name == "left-open"


def test_end_merges_args():
    env = Environment()
    tr = Tracer().install(env)
    sp = tr.begin("t", "x", actor="a", args={"in": 1})
    tr.end(sp, args={"out": 2})
    assert sp.args == {"in": 1, "out": 2}


# -- ring-buffer mode --------------------------------------------------------
def test_ring_buffer_keeps_tail_and_counts_drops():
    env = Environment()
    tr = Tracer(max_events=4).install(env)
    for i in range(10):
        tr.instant("t", f"ev{i}", actor="a")
    assert len(tr) == 4
    assert tr.dropped == 6
    assert [r.name for r in tr.events] == ["ev6", "ev7", "ev8", "ev9"]
    tail = tr.tail()
    assert [t["name"] for t in tail] == ["ev6", "ev7", "ev8", "ev9"]
    assert tr.tail(2)[0]["name"] == "ev8"


def test_stall_spans_recorded_under_pressure():
    """The write controller opens one stall span per stall interval and
    stamps the latched StallReason plus LSM pressure into its args."""
    env = Environment()
    tr = Tracer().install(env)
    opts = small_options(level0_stop_writes_trigger=3,
                         level0_slowdown_writes_trigger=2,
                         slowdown_enabled=False)
    db, _, _ = small_db(env, opts)
    fill(env, db, 4000)
    wc = db.write_controller
    wc.finalize()
    tr.close_open_spans()
    assert wc.stall_events > 0
    stall_spans = list(tr.spans("stall"))
    assert len(stall_spans) == len(wc.stall_intervals)
    for sp, (t0, t1) in zip(stall_spans, wc.stall_intervals):
        assert sp.t0 == pytest.approx(t0)
        assert sp.t1 == pytest.approx(t1)
        reason = sp.args["reason"]
        assert sp.name == f"stall.{reason}"
        assert reason in ("memtable", "l0", "pending_bytes")
        assert "l0" in sp.args and "pending_bytes" in sp.args
    db.close()
