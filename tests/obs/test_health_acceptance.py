"""Acceptance for the telemetry + health layer.

* A telemetry-disabled run is bit-identical to the seed behaviour
  (trajectory equality against an instrumented run of the same cell).
* The Fig 2 stall-prone cell (RocksDB(1) w/o slowdown) fires both
  ``stall_storm`` and ``zero_traffic_while_stalled``; the Fig 11 KVACCEL
  cell fires neither.
* Hub series agree in length with each other and with the shared axis,
  and the stall-time channel sums to the controller's books.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.bench.profiles import mini_profile  # noqa: E402
from repro.bench.runner import RunSpec, run_workload  # noqa: E402

PROFILE = mini_profile(256)
STALL_RULES = {"stall_storm", "zero_traffic_while_stalled"}


@pytest.fixture(scope="module")
def rocksdb_monitored():
    """The Fig 2 pathology cell, telemetry + default rules on."""
    return run_workload(RunSpec("rocksdb", "A", 1, slowdown=False),
                        PROFILE, telemetry=True)


@pytest.fixture(scope="module")
def kvaccel_monitored():
    """The Fig 11 KVACCEL cell, telemetry + default rules on."""
    return run_workload(RunSpec("kvaccel", "A", 1, rollback="disabled"),
                        PROFILE, telemetry=True)


def test_disabled_telemetry_is_bit_identical(rocksdb_monitored):
    """Telemetry must not perturb the trajectory: a monitored run and a
    plain run of the same spec agree on every simulated observable."""
    plain = run_workload(RunSpec("rocksdb", "A", 1, slowdown=False), PROFILE)
    mon = rocksdb_monitored
    assert plain.telemetry is None and plain.health_events == []
    assert plain.write_ops == mon.write_ops
    assert plain.read_ops == mon.read_ops
    assert plain.write_bytes == mon.write_bytes
    assert plain.duration == mon.duration
    assert plain.times == mon.times
    assert plain.write_ops_series == mon.write_ops_series
    assert plain.stall_intervals == mon.stall_intervals
    assert plain.stall_events == mon.stall_events
    assert plain.total_stall_time == mon.total_stall_time
    assert plain.write_latency == mon.write_latency


def test_stall_prone_cell_fires_stall_rules(rocksdb_monitored):
    summary = rocksdb_monitored.health_summary()
    assert summary.get("stall_storm", 0) >= 1
    assert summary.get("zero_traffic_while_stalled", 0) >= 1
    enters = [e for e in rocksdb_monitored.health_events
              if e["phase"] == "enter"]
    assert all(e["severity"] == "critical" for e in enters
               if e["rule"] in STALL_RULES)
    # Every enter for a rule is eventually followed by a clear or the rule
    # is still active at run end; phases alternate per rule.
    for rule in STALL_RULES:
        phases = [e["phase"] for e in rocksdb_monitored.health_events
                  if e["rule"] == rule]
        assert phases[0] == "enter"
        assert all(a != b for a, b in zip(phases, phases[1:]))


def test_kvaccel_cell_fires_no_stall_rules(kvaccel_monitored):
    summary = kvaccel_monitored.health_summary()
    assert summary.get("stall_storm", 0) == 0
    assert summary.get("zero_traffic_while_stalled", 0) == 0


def test_hub_series_aligned(rocksdb_monitored):
    tel = rocksdb_monitored.telemetry
    assert tel is not None
    n = len(tel["times"])
    assert n > 0
    for name, series in tel["channels"].items():
        assert len(series) == n, f"channel {name} misaligned"
    # The final (flushed) bucket ends at the run's horizon.
    assert tel["times"][-1] == pytest.approx(rocksdb_monitored.duration)
    assert tel["period"] == pytest.approx(PROFILE.sample_period)


def test_core_channels_present(rocksdb_monitored, kvaccel_monitored):
    base = {"lsm.write_ops", "lsm.memtable_bytes", "lsm.l0",
            "lsm.pending_bytes", "pcie.tx_bytes", "pcie.rx_bytes",
            "nand.busy_time", "wc.state", "wc.stall_time"}
    assert base <= set(rocksdb_monitored.telemetry["channels"])
    kv_extra = {"ctl.redirected", "ctl.normal", "devlsm.bytes",
                "detector.stall_condition", "kv.commands"}
    assert (base | kv_extra) <= set(kvaccel_monitored.telemetry["channels"])


def test_stall_time_channel_sums_to_books(rocksdb_monitored):
    tel = rocksdb_monitored.telemetry
    assert sum(tel["channels"]["wc.stall_time"]) == pytest.approx(
        rocksdb_monitored.total_stall_time, rel=1e-9)


def test_write_ops_channel_matches_driver(rocksdb_monitored):
    tel = rocksdb_monitored.telemetry
    assert sum(tel["channels"]["lsm.write_ops"]) == \
        rocksdb_monitored.write_ops


def test_kvaccel_redirection_visible(kvaccel_monitored):
    tel = kvaccel_monitored.telemetry
    redirected = sum(tel["channels"]["ctl.redirected"])
    assert redirected == kvaccel_monitored.extra["redirected_writes"]
    assert redirected > 0, "the Fig 11 cell must actually redirect"
