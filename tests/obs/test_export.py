"""Chrome-trace export: JSON round-trip, schema validation, JSONL,
attribution and top-span analysis."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.obs import (  # noqa: E402
    Tracer,
    attribution_report,
    load_chrome_trace,
    spans_from_chrome,
    stall_attribution,
    to_chrome_trace,
    top_spans,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim import Environment  # noqa: E402


def sample_tracer() -> Tracer:
    """A tracer with spans, instants, and counters across two actors."""
    env = Environment()
    tr = Tracer().install(env)

    def flusher():
        sp = tr.begin("flush", "flush", args={"bytes": 4096})
        yield env.timeout(0.25)
        nsp = tr.begin("nand", "nand.program", args={"bytes": 4096})
        yield env.timeout(0.5)
        tr.end(nsp)
        tr.end(sp)

    def controller():
        yield env.timeout(0.1)
        tr.instant("stall", "stall.enter", actor="write_controller",
                   args={"reason": "l0", "l0": 7, "imm": 1,
                         "pending_bytes": 12345})
        ssp = tr.begin("stall", "stall.l0", actor="write_controller",
                       args={"reason": "l0", "l0": 7, "imm": 1,
                             "pending_bytes": 12345})
        ksp = tr.begin("kv", "kv.put", actor="kv", args={"bytes": 1000})
        yield env.timeout(0.4)
        tr.end(ksp)
        tr.end(ssp)
        tr.instant("stall", "stall.exit", actor="write_controller",
                   args={"reason": "l0"})
        tr.counter("writes", 42)

    env.process(flusher(), name="flusher")
    env.process(controller(), name="ctl")
    env.run()
    return tr


def test_chrome_roundtrip_through_json_loads():
    tr = sample_tracer()
    doc = json.loads(json.dumps(to_chrome_trace(tr, label="test")))
    assert validate_chrome_trace(doc) == []
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    assert len(xs) == tr.span_count
    # ts/dur non-negative and monotonic over non-metadata events
    last = None
    for e in events:
        if e["ph"] == "M":
            continue
        assert e["ts"] >= 0
        if e["ph"] == "X":
            assert e["dur"] >= 0
        if last is not None:
            assert e["ts"] >= last
        last = e["ts"]
    # every actor got a named pseudo-thread
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"flusher", "write_controller", "kv"} <= names


def test_sim_seconds_scaled_to_microseconds():
    tr = sample_tracer()
    doc = to_chrome_trace(tr)
    nand = next(e for e in doc["traceEvents"]
                if e.get("name") == "nand.program")
    assert nand["ts"] == pytest.approx(0.25 * 1e6)
    assert nand["dur"] == pytest.approx(0.5 * 1e6)


def test_write_and_reload_chrome_trace(tmp_path):
    tr = sample_tracer()
    path = tmp_path / "trace.json"
    write_chrome_trace(tr, str(path), label="unit")
    doc = load_chrome_trace(str(path))
    assert validate_chrome_trace(doc) == []
    assert doc["otherData"]["label"] == "unit"
    spans = spans_from_chrome(doc)
    by_name = {s["name"]: s for s in spans}
    assert by_name["flush"]["actor"] == "flusher"
    assert by_name["nand.program"]["t0"] == pytest.approx(0.25)
    assert by_name["nand.program"]["t1"] == pytest.approx(0.75)
    assert by_name["kv.put"]["args"]["bytes"] == 1000


def test_validator_catches_corruption():
    tr = sample_tracer()
    base = to_chrome_trace(tr)

    def corrupt(mutate):
        doc = json.loads(json.dumps(base))
        mutate(doc["traceEvents"])
        return validate_chrome_trace(doc)

    def first_x(events):
        return next(e for e in events if e["ph"] == "X")

    assert corrupt(lambda evs: first_x(evs).update(ts=-1.0))
    assert corrupt(lambda evs: first_x(evs).update(dur=-5))
    assert corrupt(lambda evs: first_x(evs).update(ph="Z"))
    assert corrupt(lambda evs: first_x(evs).update(name=""))
    assert corrupt(lambda evs: first_x(evs).update(tid="not-an-int"))
    assert validate_chrome_trace({"traceEvents": "nope"})
    assert validate_chrome_trace([]) == ["document must be a dict, got list"]
    assert validate_chrome_trace(base) == []   # the original stays valid


def test_write_jsonl(tmp_path):
    tr = sample_tracer()
    path = tmp_path / "trace.jsonl"
    n = write_jsonl(tr, str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == n == len(tr.events)
    objs = [json.loads(line) for line in lines]
    kinds = {o["type"] for o in objs}
    assert kinds == {"span", "instant", "counter"}


def test_stall_attribution_from_tracer_and_chrome():
    tr = sample_tracer()
    for source in (tr, spans_from_chrome(to_chrome_trace(tr))):
        atts = stall_attribution(source)
        assert len(atts) == 1
        att = atts[0]
        assert att.reason == "l0"
        assert att.l0_files == 7
        assert att.immutable_memtables == 1
        assert att.pending_compaction_bytes == 12345
        assert att.duration == pytest.approx(0.4)
        # the flush [0, 0.75] overlaps the stall [0.1, 0.5] for 0.4 s
        assert att.concurrent_flush_time == pytest.approx(0.4)
        # kv.put rode the stall window: its bytes count as redirect volume
        assert att.redirect_bytes == 1000
        assert att.redirect_ops == 1
        report = attribution_report(source)
        assert "l0" in report and "1 stall(s)" in report


def test_attribution_report_empty():
    assert "no stall spans" in attribution_report([])


def test_top_spans():
    tr = sample_tracer()
    top = top_spans(tr, n=5)
    assert set(top) == {"flush", "nand", "stall", "kv"}
    (dur, name, t0) = top["nand"][0]
    assert name == "nand.program"
    assert dur == pytest.approx(0.5)
    # descending by duration within each category
    for items in top.values():
        assert all(a[0] >= b[0] for a, b in zip(items, items[1:]))
