"""Per-shard health/SLO rule instances over cluster channels."""

import pytest

from repro.bench import RunSpec, mini_profile, run_workload
from repro.obs import cluster_shard_rules
from repro.obs.rules import HealthMonitor


def _sample(stalls=(), degraded=()):
    """One telemetry bucket: ``stalls``/``degraded`` name the shard ids
    exhibiting the symptom."""
    s = {}
    for k in stalls:
        s[f"cluster.shard{k}.stall_time"] = 0.9
    for k in degraded:
        s[f"cluster.shard{k}.resil_state"] = 2.0
    return s


def test_rule_instances_per_shard():
    rules = cluster_shard_rules(3)
    names = [r.name for r in rules]
    for k in range(3):
        assert f"stall_storm.shard{k}" in names
        assert f"degraded_mode_entered.shard{k}" in names
        assert f"retry_storm.shard{k}" in names
        assert f"shard_failover.shard{k}" in names
    assert "rebalance_stuck" in names
    assert len(rules) == 13  # 4 per shard + one fleet-wide rule
    with pytest.raises(ValueError):
        cluster_shard_rules(0)


def test_retry_storm_fires_only_on_the_storming_shard():
    mon = HealthMonitor(None, cluster_shard_rules(2, retry_storm_rate=50.0))
    # Three buckets of sustained retry pressure on shard 1 only.
    for t in range(3):
        mon.observe(float(t), {"cluster.shard1.retries": 80.0})
    fired = {e.rule for e in mon.events if e.phase == "enter"}
    assert fired == {"retry_storm.shard1"}
    ev = next(e for e in mon.events if e.rule == "retry_storm.shard1")
    assert ev.data["shard"] == 1
    assert ev.data["retries_per_bucket"] >= 50.0


def test_stall_storm_fires_only_on_the_storming_shard():
    mon = HealthMonitor(None, cluster_shard_rules(2))
    # Ten buckets with shard 1 stalled well past the 30% threshold;
    # shard 0 stays clean.
    for t in range(10):
        mon.observe(float(t), _sample(stalls=(1,) if t % 2 == 0 else ()))
    fired = {e.rule for e in mon.events if e.phase == "enter"}
    assert fired == {"stall_storm.shard1"}
    ev = next(e for e in mon.events if e.rule == "stall_storm.shard1")
    assert ev.data["shard"] == 1
    assert ev.data["stalled_frac"] >= 0.3


def test_degraded_entry_carries_shard_id():
    mon = HealthMonitor(None, cluster_shard_rules(4))
    mon.observe(0.0, _sample(degraded=(2,)))
    enters = [e for e in mon.events if e.phase == "enter"]
    assert [e.rule for e in enters] == ["degraded_mode_entered.shard2"]
    assert enters[0].data == {"shard": 2, "resil_state": 2.0}


def test_cluster_run_installs_shard_rules():
    """A multi-shard cluster cell with telemetry on gets the per-shard
    instances automatically (no health events expected on a healthy
    run — the point is that the rules are live on shard channels)."""
    result = run_workload(
        RunSpec("cluster", "A", 1, rollback="disabled", shards=2),
        mini_profile(64), telemetry=True)
    assert result.telemetry is not None
    # Shard channels exist for the rules to read.
    channels = set(result.telemetry["channels"])
    assert any(c.startswith("cluster.shard0.") for c in channels)
    assert any(c.startswith("cluster.shard1.") for c in channels)
