"""Latency-lineage profiler: unit semantics + acceptance numbers.

Three layers:

* unit — the leaf-stack attribution on synthetic processes (nesting,
  residual, dangling frames, determinism of exemplar selection);
* integration — real cells through ``run_workload``: the stall-heavy
  fig02-style cell must attribute >=50% of its p99-bucket latency to
  stall while the fig11 KVACCEL cell attributes <10%, and every op's
  segments must sum to its end-to-end latency (the partition invariant);
* no-op guard — lineage probes read the sim clock but never schedule
  events, so a fully-instrumented run reproduces the pinned golden
  fig11 trajectory bit-identically.
"""

import json
from pathlib import Path

import pytest

from repro.bench import RunSpec, mini_profile, run_workload
from repro.obs import (
    DEFAULT_BANDS,
    LineageProfiler,
    check_lineage_invariant,
    exemplars_from_chrome,
    lineage_report,
    ops_from_chrome,
    percentile_bands,
)
from repro.obs.export import load_chrome_trace
from repro.sim import Environment

GOLDEN = Path(__file__).resolve().parents[1] / "data" / "golden_fig11_cell.json"


# -- unit: leaf-stack attribution -------------------------------------------

def test_nested_segments_partition_e2e():
    env = Environment()
    lp = LineageProfiler(env).install()

    def op():
        ctx = lp.op_begin("put_batch", count=4, nbytes=100)
        try:
            yield env.timeout(1.0)          # before any segment
            lp.enter("wal")
            yield env.timeout(2.0)
            lp.enter("nand")                # wal paused while nand runs
            yield env.timeout(3.0)
            lp.leave()
            yield env.timeout(4.0)          # wal resumes
            lp.leave()
        finally:
            lp.op_end(ctx)

    env.process(op(), name="w")
    env.run()
    assert lp.op_count == 1
    rec = lp.ops[0]
    assert rec["e2e"] == pytest.approx(10.0)
    assert rec["segs"]["wal"] == pytest.approx(6.0)
    assert rec["segs"]["nand"] == pytest.approx(3.0)
    assert rec["segs"]["unattributed"] == pytest.approx(1.0)
    assert rec["count"] == 4 and rec["nbytes"] == 100
    assert check_lineage_invariant(lp.ops) == []
    assert lp.invariant_violations == 0


def test_dangling_frames_drained_at_op_end():
    env = Environment()
    lp = LineageProfiler(env).install()

    def op():
        ctx = lp.op_begin("get")
        lp.enter("stall")
        yield env.timeout(5.0)
        # leave() never called: op_end must drain the open frame.
        lp.op_end(ctx)

    env.process(op(), name="r")
    env.run()
    rec = lp.ops[0]
    assert rec["segs"]["stall"] == pytest.approx(5.0)
    assert check_lineage_invariant(lp.ops) == []


def test_no_nested_ops_per_process():
    env = Environment()
    lp = LineageProfiler(env).install()
    seen = []

    def op():
        ctx = lp.op_begin("put_batch")
        inner = lp.op_begin("get")          # already open: must be a no-op
        seen.append(inner)
        yield env.timeout(1.0)
        assert lp.op_end(inner) is None
        lp.op_end(ctx)

    env.process(op(), name="w")
    env.run()
    assert seen == [None]
    assert lp.op_count == 1


def test_op_begin_outside_process_is_noop():
    env = Environment()
    lp = LineageProfiler(env).install()
    assert lp.op_begin("put_batch") is None     # no active process
    assert lp.op_end(None) is None
    assert lp.op_count == 0


def test_enter_leave_without_open_op_is_noop():
    env = Environment()
    lp = LineageProfiler(env).install()

    def proc():
        lp.enter("wal")                     # no op open: ignored
        yield env.timeout(1.0)
        lp.leave()

    env.process(proc(), name="p")
    env.run()
    assert lp.op_count == 0


def test_percentile_bands_slicing():
    ops = [{"op_id": i, "kind": "put_batch", "scope": "db", "count": 1,
            "nbytes": 0, "t0": 0.0, "e2e": float(i + 1),
            "segs": {"stall": float(i + 1), "unattributed": 0.0}}
           for i in range(100)]
    bands = percentile_bands(ops, bands=DEFAULT_BANDS)
    assert [b["n"] for b in bands] == [50, 40, 9, 1]
    tail = bands[-1]
    assert tail["band"] == "p99-p100"
    assert tail["mean_e2e"] == pytest.approx(100.0)
    assert tail["shares"]["stall"] == pytest.approx(1.0)
    assert sum(b["n"] for b in bands) == len(ops)


def test_exemplar_selection_is_topk_and_ordered():
    env = Environment()
    lp = LineageProfiler(env, top_k=3).install()

    def op(d):
        ctx = lp.op_begin("put_batch")
        yield env.timeout(d)
        lp.op_end(ctx)

    def driver():
        for d in [5.0, 1.0, 9.0, 3.0, 9.0, 7.0]:
            yield env.process(op(d))

    env.process(driver(), name="drv")
    env.run()
    ex = lp.exemplars()
    assert [e["e2e"] for e in ex] == [9.0, 9.0, 7.0]
    # ties broken toward the earlier op id, slowest-first output
    assert [e["e2e"] for e in ex] == sorted(
        [e["e2e"] for e in ex], reverse=True)
    assert all("spans" in e for e in ex)


# -- integration: real cells -----------------------------------------------

@pytest.fixture(scope="module")
def stall_heavy_run(tmp_path_factory):
    """Fig02-style stall-heavy cell (RocksDB without the slowdown valve),
    with both the tracer and the lineage profiler on."""
    trace = tmp_path_factory.mktemp("lineage") / "stall_trace.json"
    result = run_workload(RunSpec("rocksdb", "A", 1, slowdown=False),
                          mini_profile(128), trace_path=str(trace),
                          lineage=True)
    return result, trace


def test_stall_heavy_invariant_and_p99_attribution(stall_heavy_run):
    result, _ = stall_heavy_run
    lin = result.extra["lineage"]
    assert lin["op_count"] > 100
    assert lin["invariant_violations"] == 0
    assert check_lineage_invariant(lin["ops"]) == []
    bands = percentile_bands(lin["ops"])
    tail = bands[-1]
    assert tail["band"] == "p99-p100"
    # The acceptance number: a write-stall-bound run must pin its tail
    # latency on the stall segment, not spread it around.
    assert tail["shares"].get("stall", 0.0) >= 0.5
    # ... and the report renders without blowing up.
    assert "p99-p100" in lineage_report(lin["ops"],
                                        exemplars=lin["exemplars"])


def test_chrome_trace_round_trip(stall_heavy_run):
    result, trace = stall_heavy_run
    lin = result.extra["lineage"]
    doc = load_chrome_trace(str(trace))
    ops = ops_from_chrome(doc)
    assert len(ops) == lin["op_count"]
    assert check_lineage_invariant(ops) == []
    # Rebuilt records give the same tail attribution as the in-memory ones.
    mem_tail = percentile_bands(lin["ops"])[-1]
    tr_tail = percentile_bands(ops)[-1]
    assert tr_tail["n"] == mem_tail["n"]
    for seg, share in mem_tail["shares"].items():
        assert tr_tail["shares"].get(seg, 0.0) == pytest.approx(
            share, abs=1e-6)
    ex = exemplars_from_chrome(doc, ops, top_k=3)
    assert [e["op_id"] for e in ex] == [e["op_id"]
                                        for e in lin["exemplars"][:3]]


def test_fig11_kvaccel_tail_not_stall_bound():
    result = run_workload(RunSpec("kvaccel", "A", 1, rollback="disabled"),
                          mini_profile(128), lineage=True)
    lin = result.extra["lineage"]
    assert lin["invariant_violations"] == 0
    tail = percentile_bands(lin["ops"])[-1]
    # KVACCEL's redirect absorbs the pressure window: stall must be a
    # rounding error in the tail, not the story.
    assert tail["shares"].get("stall", 0.0) < 0.10


def test_exemplar_determinism_across_runs():
    spec = RunSpec("rocksdb", "A", 1, slowdown=False)
    runs = [run_workload(spec, mini_profile(64), lineage=True)
            for _ in range(2)]
    ids = [[e["op_id"] for e in r.extra["lineage"]["exemplars"]]
           for r in runs]
    e2es = [[e["e2e"] for e in r.extra["lineage"]["exemplars"]]
            for r in runs]
    assert ids[0] == ids[1]
    assert e2es[0] == e2es[1]
    assert len(ids[0]) > 0


def test_cluster_cells_record_per_shard_scopes():
    result = run_workload(
        RunSpec("cluster", "A", 1, rollback="disabled", shards=2),
        mini_profile(64), lineage=True)
    lin = result.extra["lineage"]
    scopes = {r["scope"] for r in lin["ops"]}
    assert "cluster.shard0" in scopes and "cluster.shard1" in scopes
    assert check_lineage_invariant(lin["ops"]) == []


# -- no-op guard ------------------------------------------------------------

def test_disabled_profilers_leave_no_residue():
    result = run_workload(RunSpec("rocksdb", "A", 1), mini_profile(64))
    assert "lineage" not in result.extra
    assert "kernel_profile" not in result.extra
    env = Environment()
    assert env.lineage is None and env.kernel_profiler is None


def test_lineage_enabled_run_matches_golden_fig11():
    """Stronger than probes-off bit-identity: the probes only *read* the
    sim clock, so even a fully-instrumented run must reproduce the pinned
    golden trajectory exactly (``to_json`` excludes ``extra``)."""
    result = run_workload(RunSpec("kvaccel", "A", 1, rollback="disabled"),
                          mini_profile(256), lineage=True)
    produced = json.loads(json.dumps(result.to_json()))
    golden = json.loads(GOLDEN.read_text())
    assert set(produced) == set(golden)
    for field in golden:
        assert produced[field] == golden[field], (
            f"lineage probes altered the trajectory in field {field!r}")
