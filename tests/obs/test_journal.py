"""Flight recorder + first-divergence bisector (repro.obs.journal).

Four layers:

* unit — ring eviction, window filtering, tail/histogram views on a
  synthetic journal (no simulation);
* determinism — the same profile + seed recorded twice produces
  *byte*-identical journal files, and a single injected DELAY fault is
  pinpointed by the bisector down to the armed site;
* no-op matrix — all four observability planes (trace + telemetry +
  lineage + journal) enabled simultaneously still reproduce the pinned
  golden fig11 trajectory bit-identically;
* plumbing — CLI exit codes, cluster per-shard digest scopes, the crash
  harness's journal tail, and windowed replay recordings.
"""

import gzip
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import fault_seed, make_cluster_system  # noqa: E402

from repro.bench import RunSpec, mini_profile, run_workload  # noqa: E402
from repro.bench.runner import build_system  # noqa: E402
from repro.faults import (  # noqa: E402
    DELAY,
    FaultAction,
    FaultRegistry,
    KvaccelFaultHarness,
    NthOccurrencePlan,
)
from repro.obs import (  # noqa: E402
    Journal,
    Tracer,
    first_divergence,
    format_divergence,
    load_journal,
    register_digest_sources,
    replay_window,
    write_divergence_artifact,
    write_journal,
)
from repro.sim import Environment  # noqa: E402
from repro.workload import DriverConfig, FillRandomDriver  # noqa: E402

GOLDEN = Path(__file__).resolve().parents[1] / "data" / "golden_fig11_cell.json"
SRC = Path(__file__).resolve().parents[2] / "src"

PERTURB_SITE = "wal.flush.start"


# -- unit: record bookkeeping -------------------------------------------------

def test_ring_bounds_memory_and_counts_drops():
    j = Journal(ring=4)
    for i in range(10):
        j.record_event(float(i), "p", "Timeout")
    assert len(j) == 4
    assert j.dropped == 6
    assert j.event_count == 10
    # absolute indices survive eviction, oldest first
    tail = j.tail()
    assert [r["idx"] for r in tail] == [6, 7, 8, 9]
    assert tail[-1]["class"] == "Timeout"


def test_window_skips_outside_but_keeps_absolute_indices():
    j = Journal(window=(1.0, 2.0))
    j.record_event(0.5, "p", "Timeout")       # before the window
    j.site(1.5, "p", "wal.append")            # inside
    j.record_event(2.5, "p", "Process")       # after
    assert len(j) == 1
    rec = j.tail()[0]
    assert rec["kind"] == "site" and rec["site"] == "wal.append"
    assert rec["idx"] == 1                    # position in the full stream
    assert j.event_count == 2 and j.site_count == 1


def test_histogram_and_checkpoint_records():
    j = Journal(period=1.0)
    j.add_digest_source("toy", lambda: {"n": 1})
    j.record_event(0.1, "p", "Timeout")
    j.record_event(0.2, "p", "Timeout")
    j.record_event(0.3, "p", "Process")
    j.checkpoint_now(0.5)
    assert j.event_class_histogram() == {"Timeout": 2, "Process": 1}
    digests = [r for r in j.tail() if r["kind"] == "digest"]
    assert len(digests) == 1
    assert digests[0]["layer"] == "toy"
    assert len(digests[0]["digest"]) == 16


# -- recording a real cell ----------------------------------------------------

def _record(path: str, profile, perturb: bool = False) -> Journal:
    """One fig11-style cell with the flight recorder on; ``perturb``
    arms a single DELAY at PERTURB_SITE (the bisector's needle)."""
    env = Environment()
    journal = Journal(period=profile.sample_period).install(env)
    if perturb:
        reg = FaultRegistry(fault_seed()).install(env)
        reg.arm(PERTURB_SITE, NthOccurrencePlan(5),
                FaultAction(DELAY, delay=0.001))
    spec = RunSpec("kvaccel", "A", 1, rollback="disabled")
    db, ssd, cpu = build_system(env, profile, spec)
    register_digest_sources(journal, db, ssd)
    cfg = DriverConfig(duration=profile.duration,
                       key_space=profile.key_space,
                       value_size=profile.value_size,
                       batch_size=profile.batch_size)
    driver = FillRandomDriver(env, db, cfg)
    env.run(until=driver.start())
    db.close()
    journal.checkpoint_now(env.now)
    write_journal(journal, path)
    return journal


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """Three recordings of a small cell: twice clean, once perturbed."""
    d = tmp_path_factory.mktemp("journals")
    profile = mini_profile(128)
    paths = {"a": str(d / "a.jsonl.gz"), "b": str(d / "b.jsonl.gz"),
             "perturbed": str(d / "perturbed.jsonl.gz")}
    _record(paths["a"], profile)
    _record(paths["b"], profile)
    _record(paths["perturbed"], profile, perturb=True)
    return paths


def test_same_seed_journals_byte_identical(recorded):
    ba = Path(recorded["a"]).read_bytes()
    bb = Path(recorded["b"]).read_bytes()
    assert ba == bb, "same profile+seed must produce byte-identical journals"
    # and they are real recordings, not trivially empty
    loaded = load_journal(recorded["a"])
    kinds = {r[0] for r in loaded["records"]}
    assert kinds == {"event", "site", "digest"}
    assert loaded["meta"]["events"] > 1000


def test_bisector_reports_identical_runs_as_clean(recorded):
    report = first_divergence(load_journal(recorded["a"]),
                              load_journal(recorded["b"]))
    assert report["divergent"] is False
    assert report["first_divergence"] is None
    assert "identical" in format_divergence(report)


def test_bisector_pinpoints_injected_fault_site(recorded):
    report = first_divergence(load_journal(recorded["a"]),
                              load_journal(recorded["perturbed"]))
    assert report["divergent"] is True
    fd = report["first_divergence"]
    assert fd is not None and fd["t"] > 0.0
    # the nearest preceding site record names the injection point
    assert report["suspect_site"] is not None
    assert report["suspect_site"]["site"] == PERTURB_SITE
    # the digest pass bracketed the divergence too
    assert report["checkpoint"] is not None
    # context frames surround the divergent record in both streams
    assert report["context_a"] and report["context_b"]
    rendered = format_divergence(report, "clean", "perturbed")
    assert PERTURB_SITE in rendered
    assert "first divergent record" in rendered


def test_cli_diff_exit_codes(recorded, tmp_path):
    env = {**os.environ, "PYTHONPATH": str(SRC)}

    def diff(*argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.obs", "diff", *argv],
            env=env, capture_output=True, text=True)

    same = diff(recorded["a"], recorded["b"])
    assert same.returncode == 0, same.stderr
    assert "identical" in same.stdout

    diverged = diff(recorded["a"], recorded["perturbed"], "--json")
    assert diverged.returncode == 1, diverged.stderr
    report = json.loads(diverged.stdout)
    assert report["suspect_site"]["site"] == PERTURB_SITE

    missing = diff(recorded["a"], str(tmp_path / "nope.jsonl.gz"))
    assert missing.returncode == 2


def test_divergence_artifact_written_when_dir_set(recorded, tmp_path,
                                                  monkeypatch):
    monkeypatch.setenv("REPRO_DIVERGENCE_DIR", str(tmp_path / "artifacts"))
    report = first_divergence(load_journal(recorded["a"]),
                              load_journal(recorded["perturbed"]))
    path = write_divergence_artifact("unit_test", report,
                                     meta={"origin": "test"})
    assert path is not None
    doc = json.loads(Path(path).read_text())
    assert doc["schema"] == "repro-divergence"
    assert doc["report"]["suspect_site"]["site"] == PERTURB_SITE
    # and without the env var the writer is a no-op
    monkeypatch.delenv("REPRO_DIVERGENCE_DIR")
    assert write_divergence_artifact("unit_test_2", report) is None


def test_replay_window_records_only_the_suspect_span(tmp_path):
    # Reference run through the same harness replay_window uses (the
    # bench runner), so the replayed trajectory is the identical one.
    profile = mini_profile(128)
    full = run_workload(RunSpec("kvaccel", "A", 1, rollback="disabled"),
                        profile,
                        journal=Journal(period=profile.sample_period))
    jr = full.extra["journal"]
    events = [r for r in jr.records if r[0] == "event"]
    t0, t1 = events[len(events) // 2][2], events[-1][2]
    out = str(tmp_path / "window.jsonl.gz")
    info = replay_window("kvaccel", "A", profile, t0, t1, out)
    # the runner derives the per-cell file name from the base path
    assert info["path"].startswith(str(tmp_path / "window."))
    windowed = load_journal(info["path"])
    body = [r for r in windowed["records"] if r[0] in ("event", "site")]
    assert body, "window covers live sim time, must have records"
    assert all(t0 <= r[2] <= t1 for r in body)
    # absolute event positions are preserved: the same trajectory re-ran
    assert windowed["meta"]["events"] == jr.event_count
    assert len(body) < len(jr.records)


# -- the all-planes no-op matrix ---------------------------------------------

def test_all_planes_enabled_run_matches_golden_fig11():
    """Trace + telemetry + lineage + journal simultaneously: every plane
    only *reads* the sim clock, so even the fully instrumented run must
    reproduce the pinned golden fig11 trajectory bit-identically.
    ``telemetry``/``health_events`` are the two result fields the
    telemetry plane itself populates (null in the golden), so the
    comparison covers every other field exactly."""
    profile = mini_profile(256)
    result = run_workload(RunSpec("kvaccel", "A", 1, rollback="disabled"),
                          profile, tracer=Tracer(), telemetry=True,
                          lineage=True,
                          journal=Journal(period=profile.sample_period))
    produced = json.loads(json.dumps(result.to_json()))
    golden = json.loads(GOLDEN.read_text())
    assert set(produced) == set(golden)
    plane_owned = {"telemetry", "health_events"}
    for field in golden:
        if field in plane_owned:
            continue
        assert produced[field] == golden[field], (
            f"observability planes altered the trajectory in {field!r}")
    # the planes actually ran
    assert result.telemetry is not None
    assert result.extra["journal"].event_count > 0
    assert len(result.extra["lineage"]["ops"]) > 0


# -- plumbing: cluster scopes + crash tails -----------------------------------

def test_cluster_digest_sources_scoped_per_shard():
    env = Environment()
    journal = Journal().install(env)
    cluster, _ = make_cluster_system(env, shards=2)
    register_digest_sources(journal, cluster)
    journal.checkpoint_now(0.0)
    layers = {r["layer"] for r in journal.tail() if r["kind"] == "digest"}
    for sid in range(2):
        for name in ("lsm", "controller", "detector", "devlsm", "ftl"):
            assert f"cluster.shard{sid}.{name}" in layers
    cluster.close()


def test_crash_report_carries_journal_tail():
    tail_len = 64
    harness = KvaccelFaultHarness(seed=fault_seed(), journal_tail=tail_len)
    report = harness.crash_at("devlsm.flush.start")
    assert report.crashed
    assert report.ok, report.describe()
    tail = report.journal_tail
    assert 0 < len(tail) <= tail_len
    # oldest-first dicts ending at the crash
    times = [r["t"] for r in tail]
    assert times == sorted(times)
    assert {r["kind"] for r in tail} <= {"event", "site"}
    # the armed site is what the recorder saw last
    sites = [r["site"] for r in tail if r["kind"] == "site"]
    assert "devlsm.flush.start" in sites


def test_journal_tail_off_by_default():
    harness = KvaccelFaultHarness(seed=fault_seed())
    report = harness.crash_at("wal.append", occurrence=3)
    assert report.crashed
    assert report.journal_tail == []
