"""The resilience health rules: degraded-mode entry and retry storms."""

from repro.obs.rules import HealthMonitor, default_rules


def rule_named(name, **kw):
    rules = [r for r in default_rules(**kw) if r.name == name]
    assert len(rules) == 1, name
    return rules[0]


def test_default_rule_set_includes_resilience_rules():
    names = [r.name for r in default_rules()]
    assert "degraded_mode_entered" in names
    assert "retry_storm" in names
    assert len(names) == len(set(names))


def test_degraded_mode_entered_tracks_state_gauge():
    mon = HealthMonitor(None, [rule_named("degraded_mode_entered")])
    mon.observe(0.0, {"resil.state": 0.0})       # HEALTHY
    mon.observe(1.0, {"resil.state": 1.0})       # RECOVERING: not degraded
    assert mon.events == []
    mon.observe(2.0, {"resil.state": 2.0})       # DEGRADED
    assert [e.phase for e in mon.events] == ["enter"]
    assert mon.events[0].severity == "critical"
    assert mon.events[0].data == {"resil_state": 2.0}
    mon.observe(3.0, {"resil.state": 0.0})       # recovered
    assert [e.phase for e in mon.events] == ["enter", "clear"]


def test_retry_storm_needs_sustained_pressure():
    rule = rule_named("retry_storm", period=1.0, retry_storm_rate=10.0)
    mon = HealthMonitor(None, [rule])
    # One hot bucket inside a quiet window: average stays below the bar.
    for t, retries in enumerate([0.0, 12.0, 0.0, 0.0]):
        mon.observe(float(t), {"resil.retries": retries})
    assert not mon.fired("retry_storm")
    # Three consecutive storming buckets.
    for t, retries in enumerate([15.0, 15.0, 15.0], start=4):
        mon.observe(float(t), {"resil.retries": retries})
    assert mon.fired("retry_storm")
    assert mon.events[-1].phase == "enter"
    assert mon.events[-1].severity == "warning"


def test_retry_storm_scales_with_period():
    # Same retries/bucket, 10x shorter buckets: 5/bucket is now a storm.
    rule = rule_named("retry_storm", period=0.1, retry_storm_rate=10.0)
    mon = HealthMonitor(None, [rule])
    for t in range(3):
        mon.observe(float(t), {"resil.retries": 5.0})
    assert mon.fired("retry_storm")


def test_missing_channels_never_trip_resilience_rules():
    """Systems without the resilience stack export neither channel."""
    mon = HealthMonitor(None, [rule_named("degraded_mode_entered"),
                               rule_named("retry_storm")])
    for t in range(6):
        mon.observe(float(t), {"lsm.write_ops": 100.0})
    assert mon.events == []
