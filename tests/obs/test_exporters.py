"""Exporters + obs CLI smoke: Prometheus text, CSV, compare exit codes."""

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.exporters import (
    telemetry_to_csv,
    telemetry_to_prometheus,
    write_telemetry_csv,
)
from repro.obs.telemetry import TelemetryHub
from repro.sim import Environment


@pytest.fixture()
def hub():
    env = Environment()
    h = TelemetryHub(env, period=1.0).install(env)
    h.gauge("lsm.l0", lambda: 4.0)

    def producer():
        while True:
            h.add("lsm.write_ops", 10)
            yield env.timeout(1.0)

    env.process(producer())
    env.run(until=3.5)
    h.stop(flush=True)
    return h


def test_prometheus_text(hub):
    text = telemetry_to_prometheus(hub)
    assert "# TYPE repro_lsm_write_ops gauge" in text
    assert "repro_lsm_write_ops 10" in text          # last bucket value
    assert "repro_lsm_write_ops_total 40" in text    # rate counter total
    assert "repro_lsm_l0 4" in text
    assert "repro_sim_time_seconds 3.5" in text
    # The dict export renders identically to the live hub.
    assert telemetry_to_prometheus(hub.export()) == text


def test_prometheus_labels(hub):
    text = telemetry_to_prometheus(hub, labels={"cell": "KVAccel(1)"})
    assert 'repro_lsm_l0{cell="KVAccel(1)"} 4' in text


def test_csv(hub, tmp_path):
    text = telemetry_to_csv(hub)
    lines = text.strip().splitlines()
    assert lines[0] == "time,lsm.l0,lsm.write_ops"
    assert len(lines) == 1 + 4                       # 3 full + 1 flushed
    assert lines[1].startswith("1")
    path = tmp_path / "tel.csv"
    write_telemetry_csv(hub, path)
    assert path.read_text() == text


def test_cli_compare_exit_codes(tmp_path, capsys):
    import json
    doc = {"schema": "repro-bench-baseline", "version": 1,
           "experiment": "x", "profile": "mini256",
           "cells": {"c": {"write_throughput_ops": 100.0, "health": {}}}}
    a = tmp_path / "a.json"
    a.write_text(json.dumps(doc))
    worse = dict(doc, cells={"c": {"write_throughput_ops": 10.0,
                                   "health": {}}})
    b = tmp_path / "b.json"
    b.write_text(json.dumps(worse))
    assert obs_main(["compare", str(a), str(a)]) == 0
    assert obs_main(["compare", str(a), str(b)]) == 1
    assert obs_main(["compare", str(a), str(tmp_path / "missing.json")]) == 2
    out = capsys.readouterr().out
    assert "REGRESSIONS" in out
