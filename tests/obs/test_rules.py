"""Unit tests for the health/SLO rule engine."""

import pytest

from repro.obs.rules import (
    HealthEvent,
    HealthMonitor,
    HealthRule,
    default_rules,
)
from repro.obs.telemetry import TelemetryHub
from repro.sim import Environment

MiB = 1 << 20


def test_rule_validation():
    with pytest.raises(ValueError, match="window"):
        HealthRule("x", "warning", 0, lambda w: False)
    with pytest.raises(ValueError, match="severity"):
        HealthRule("x", "fatal", 1, lambda w: False)


def test_event_round_trip():
    ev = HealthEvent("r", "critical", 1.5, "enter", "msg", {"k": 1})
    ev2 = HealthEvent.from_dict(ev.to_dict())
    assert (ev2.rule, ev2.severity, ev2.t, ev2.phase, ev2.message,
            ev2.data) == ("r", "critical", 1.5, "enter", "msg", {"k": 1})


def test_edge_triggering_detached():
    rule = HealthRule("hot", "warning", 1, lambda w: w[-1].get("x", 0) > 5)
    mon = HealthMonitor(None, [rule])
    for t, x in enumerate([0, 10, 10, 0, 10, 0]):
        mon.observe(float(t), {"x": x})
    phases = [(e.t, e.phase) for e in mon.events]
    # Sustained firing emits one enter; each recovery emits one clear.
    assert phases == [(1.0, "enter"), (3.0, "clear"),
                      (4.0, "enter"), (5.0, "clear")]
    assert mon.fired("hot")
    assert mon.summary() == {"hot": 2}
    assert not mon.active


def test_window_not_evaluated_until_full():
    rule = HealthRule("w3", "info", 3, lambda w: all(s["x"] > 0 for s in w))
    mon = HealthMonitor(None, [rule])
    mon.observe(0.0, {"x": 1})
    mon.observe(1.0, {"x": 1})
    assert mon.events == []              # only 2 of 3 buckets seen
    mon.observe(2.0, {"x": 1})
    assert [e.phase for e in mon.events] == ["enter"]


def test_predicate_data_attached():
    rule = HealthRule("d", "info", 1,
                      lambda w: (w[-1]["x"] > 0, {"x": w[-1]["x"]}))
    mon = HealthMonitor(None, [rule])
    mon.observe(0.0, {"x": 3})
    assert mon.events[0].data == {"x": 3}


def test_monitor_subscribes_to_hub():
    env = Environment()
    hub = TelemetryHub(env, period=1.0).install(env)
    rule = HealthRule("busy", "warning", 2,
                      lambda w: all(s.get("ops", 0) >= 2 for s in w))
    mon = HealthMonitor(hub, [rule])

    def producer():
        while True:
            hub.add("ops", 3)
            yield env.timeout(1.0)

    env.process(producer())
    env.run(until=4.5)
    assert mon.fired("busy")
    assert [e.phase for e in mon.events] == ["enter"]
    assert mon.events[0].t == 2.0        # second bucket fills the window


def _mk(state=0.0, stall=0.0, delayed=0.0, tx=0.0, rx=0.0, wops=0.0,
        redir=0.0, rb=0.0, dbytes=0.0):
    return {"wc.state": state, "wc.stall_time": stall,
            "wc.delayed_time": delayed, "pcie.tx_bytes": tx,
            "pcie.rx_bytes": rx, "lsm.write_ops": wops,
            "ctl.redirected": redir, "rollback.active": rb,
            "devlsm.bytes": dbytes}


def _rules_by_name():
    return {r.name: r for r in default_rules()}


def test_stall_storm_threshold():
    rule = _rules_by_name()["stall_storm"]
    stalled, clean = _mk(state=2.0), _mk()
    # 3/10 stalled buckets >= 30% fires; 2/10 does not.
    fired, data = rule.predicate([stalled] * 3 + [clean] * 7)
    assert fired and data["stalled_frac"] == 0.3
    fired, _ = rule.predicate([stalled] * 2 + [clean] * 8)
    assert not fired


def test_zero_traffic_while_stalled():
    rule = _rules_by_name()["zero_traffic_while_stalled"]
    idle_stall = _mk(state=2.0)
    busy_stall = _mk(state=2.0, tx=500 * MiB)
    fired, _ = rule.predicate([idle_stall, idle_stall])
    assert fired
    fired, _ = rule.predicate([idle_stall, busy_stall])   # link not idle
    assert not fired
    fired, _ = rule.predicate([idle_stall, _mk()])        # not stalled
    assert not fired


def test_rollback_not_converging():
    rule = _rules_by_name()["rollback_not_converging"]
    grow = [_mk(rb=1.0, dbytes=100.0 + i) for i in range(20)]
    assert rule.predicate(grow)[0]
    shrink = [_mk(rb=1.0, dbytes=100.0 - i) for i in range(20)]
    assert not rule.predicate(shrink)[0]
    inactive = [_mk(rb=0.0, dbytes=100.0) for _ in range(20)]
    assert not rule.predicate(inactive)


def test_delayed_rate_floor_needs_real_throttling():
    rule = _rules_by_name()["delayed_rate_floor"]
    floor = 0.5 * 16 * MiB / 4096
    starved = _mk(state=1.0, delayed=0.5, wops=1.0)
    assert rule.predicate([starved] * 5)[0]
    # DELAYED state without actual throttle time (KVACCEL's Main-LSM with
    # slowdown disabled) must not fire.
    fake = _mk(state=1.0, delayed=0.0, wops=1.0)
    assert not rule.predicate([fake] * 5)[0]
    # Redirected writes count as admitted.
    redirected = _mk(state=1.0, delayed=0.5, wops=1.0, redir=floor + 10)
    assert not rule.predicate([redirected] * 5)[0]
