"""Unit tests for the TelemetryHub per-second pipeline."""

import pytest

from repro.obs.telemetry import Channel, TelemetryHub
from repro.sim import Environment


def test_channel_kind_validation():
    with pytest.raises(ValueError):
        Channel("x", "histogram")
    with pytest.raises(ValueError):
        Channel("x", "gauge")          # gauge needs a callback
    with pytest.raises(ValueError):
        Channel("x", "deriv")


def test_rate_channel_buckets():
    env = Environment()
    hub = TelemetryHub(env, period=1.0).install(env)

    def producer():
        hub.add("ops", 3)
        yield env.timeout(0.5)
        hub.add("ops", 2)
        yield env.timeout(1.0)          # crosses the t=1 bucket boundary
        hub.add("ops", 7)

    env.process(producer())
    env.run(until=2.5)
    assert hub.series("ops") == [5.0, 7.0]
    assert hub.times == [1.0, 2.0]
    assert hub.channels["ops"].total == 12.0


def test_gauge_channel_sampled_at_bucket_end():
    env = Environment()
    hub = TelemetryHub(env, period=1.0)
    state = {"v": 10.0}
    hub.gauge("depth", lambda: state["v"])

    def mutator():
        yield env.timeout(0.9)
        state["v"] = 20.0
        yield env.timeout(1.0)
        state["v"] = 30.0

    env.process(mutator())
    env.run(until=2.5)
    # Bucket ends read the value at that instant: t=1 -> 20, t=2 -> 30.
    assert hub.series("depth") == [20.0, 30.0]


def test_deriv_channel_deltas():
    env = Environment()
    hub = TelemetryHub(env, period=1.0)
    cum = {"v": 0.0}
    hub.deriv("busy", lambda: cum["v"])

    def counter():
        cum["v"] = 4.0
        yield env.timeout(1.5)
        cum["v"] = 10.0
        yield env.timeout(1.0)
        cum["v"] = 10.0     # idle bucket

    env.process(counter())
    env.run(until=3.5)
    # First bucket carries the full cumulative value, then deltas.
    assert hub.series("busy") == [4.0, 6.0, 0.0]


def test_mid_run_channel_backfills_zeros():
    env = Environment()
    hub = TelemetryHub(env, period=1.0)

    def late_publisher():
        yield env.timeout(2.5)
        hub.add("late", 1.0)

    env.process(late_publisher())
    env.run(until=3.5)
    # Born after two buckets closed: zeros backfilled to stay aligned.
    assert hub.series("late") == [0.0, 0.0, 1.0]
    assert len(hub.times) == 3


def test_redeclare_kind_mismatch():
    env = Environment()
    hub = TelemetryHub(env, period=1.0)
    hub.rate("x")
    with pytest.raises(ValueError, match="is rate"):
        hub.gauge("x", lambda: 0.0)


def test_flush_partial_bucket():
    env = Environment()
    hub = TelemetryHub(env, period=1.0).install(env)

    def producer():
        yield env.timeout(1.2)
        hub.add("ops", 5)

    env.process(producer())
    env.run(until=1.7)
    assert hub.times == [1.0]
    assert hub.flush() is True
    assert hub.times == [1.0, 1.7]
    assert hub.series("ops") == [0.0, 5.0]
    assert hub.flush() is False          # idempotent at the same clock
    hub.stop()                           # stop(flush=True) is also a no-op now
    assert hub.times == [1.0, 1.7]


def test_on_sample_callbacks():
    env = Environment()
    hub = TelemetryHub(env, period=1.0)
    hub.rate("ops")
    seen = []
    hub.on_sample(lambda t, s: seen.append((t, dict(s))))

    def producer():
        hub.add("ops")
        yield env.timeout(2.5)

    env.process(producer())
    env.run(until=2.5)
    assert [t for t, _ in seen] == [1.0, 2.0]
    assert seen[0][1] == {"ops": 1.0}
    assert seen[1][1] == {"ops": 0.0}


def test_export_shape():
    env = Environment()
    hub = TelemetryHub(env, period=0.5)
    hub.rate("b")
    hub.gauge("a", lambda: 1.0)
    env.run(until=1.1)
    doc = hub.export()
    assert doc["period"] == 0.5
    assert doc["times"] == [0.5, 1.0]
    assert sorted(doc["channels"]) == ["a", "b"]
    assert doc["kinds"] == {"a": "gauge", "b": "rate"}
    assert all(len(v) == len(doc["times"]) for v in doc["channels"].values())


def test_of_and_len():
    env = Environment()
    assert TelemetryHub.of(env) is None
    hub = TelemetryHub(env, period=1.0).install(env)
    assert TelemetryHub.of(env) is hub
    assert env.telemetry is hub
    env.run(until=3.5)
    assert len(hub) == 3


def test_invalid_period():
    env = Environment()
    with pytest.raises(ValueError):
        TelemetryHub(env, period=0)
