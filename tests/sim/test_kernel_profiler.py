"""DES kernel self-profiler: counters, install/uninstall, equivalence.

The profiled run loop (``Environment._run_profiled``) is a separate
dispatch path from the inlined fast loops, so the tests pin both the
counter semantics and — critically — that profiling never changes *what*
the simulation computes, only observes how it runs.
"""

import pytest

from repro.perf import (
    format_kernel_profile,
    profile_kernel_bench,
)
from repro.sim import (
    Environment,
    SimulationError,
    install_kernel_profiler,
    uninstall_kernel_profiler,
)


def _timeout_chain_env(procs=4, iters=100):
    env = Environment()

    def looper(delay):
        for _ in range(iters):
            yield env.timeout(delay)

    for i in range(procs):
        env.process(looper(1.0 + i * 1e-6), name=f"loop{i}")
    return env


def test_counters_on_timeout_chain():
    env = _timeout_chain_env()
    prof = install_kernel_profiler(env)
    env.run()
    d = prof.to_dict()
    assert d["heap_pops"] > 0
    assert d["heap_pushes"] > 0
    assert d["events_by_class"]["Timeout"] == 400
    assert d["timeout_requests"] == 400
    # The pool primes after the first Timeout per process; nearly every
    # later request must hit it.
    assert d["timeout_pool_hits"] > 0
    assert 0.9 <= d["timeout_pool_hit_rate"] <= 1.0
    assert d["pool_recycled"] > 0
    assert d["wall_ns"] > 0
    assert sum(d["resumes_by_process"].values()) >= 400
    assert set(d["resumes_by_process"]) == {f"loop{i}" for i in range(4)}


def test_profiled_run_matches_unprofiled_trajectory():
    def trace(env):
        """Record (time, value) of every process completion."""
        out = []

        def worker(i):
            yield env.timeout(0.5 * (i + 1))
            with res.request() as req:
                yield req
                yield env.timeout(0.25)
            out.append((env.now, i))
            return i

        from repro.sim import Resource
        res = Resource(env, capacity=1)
        for i in range(5):
            env.process(worker(i), name=f"w{i}")
        env.run()
        return out

    plain_env = Environment()
    plain = trace(plain_env)
    prof_env = Environment()
    install_kernel_profiler(prof_env)
    profiled = trace(prof_env)
    assert profiled == plain
    assert prof_env.now == plain_env.now
    assert prof_env.events_scheduled == plain_env.events_scheduled


def test_resource_counters():
    env = Environment()
    from repro.sim import Resource
    res = Resource(env, capacity=1)
    prof = install_kernel_profiler(env)

    def worker():
        with res.request() as req:
            yield req
            yield env.timeout(1.0)

    for i in range(3):
        env.process(worker(), name=f"w{i}")
    env.run()
    d = prof.to_dict()
    assert d["resource_requests"] == 3
    assert d["resource_grants"] == 3
    assert d["resource_queued"] == 2      # two waited behind the holder


def test_install_uninstall_restores_timeout():
    env = Environment()
    plain_timeout = env.timeout
    install_kernel_profiler(env)
    assert env.timeout is not plain_timeout      # counting wrapper on
    with pytest.raises(SimulationError):
        install_kernel_profiler(env)             # double install refused
    uninstall_kernel_profiler(env)
    assert env.kernel_profiler is None
    assert "timeout" not in env.__dict__         # class method restored


def test_profile_bench_entry_point_and_table():
    r = profile_kernel_bench("timeout_chain")
    assert r.profile is not None
    d = r.profile
    assert d["heap_pops"] > 0 and d["heap_pushes"] > 0
    assert d["timeout_pool_hits"] > 0            # the acceptance counters
    table = format_kernel_profile(d)
    assert "Timeout" in table
    assert "timeout pool" in table
    with pytest.raises(ValueError):
        profile_kernel_bench("no_such_bench")


def test_estimated_wall_scales_samples():
    env = _timeout_chain_env(procs=2, iters=500)
    prof = install_kernel_profiler(env, sample_every=8)
    env.run()
    d = prof.to_dict()
    est = d["estimated_wall_ns_by_class"]
    assert est.get("Timeout", 0) > 0
    # Estimate = sampled mean x total events; must be >= the raw sampled
    # time since only 1/8 of events were timed.
    assert est["Timeout"] >= prof.sampled_wall_ns_by_class["Timeout"]
    assert d["sampled_events_by_class"]["Timeout"] > 0
