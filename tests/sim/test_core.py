"""Unit tests for the DES kernel (Environment, Event, Process)."""

import pytest

from repro.sim import Environment, Event, Interrupt, SimulationError


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(5)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5, 7.5]


def test_timeout_value_passthrough():
    env = Environment()
    got = []

    def proc():
        v = yield env.timeout(1, value="hello")
        got.append(v)

    env.process(proc())
    env.run()
    assert got == ["hello"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def make(i):
        def proc():
            yield env.timeout(1)
            order.append(i)
        return proc

    for i in range(5):
        env.process(make(i)())
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_time_stops_midway():
    env = Environment()
    log = []

    def proc():
        for _ in range(10):
            yield env.timeout(1)
            log.append(env.now)

    env.process(proc())
    env.run(until=3.5)
    assert log == [1, 2, 3]
    assert env.now == 3.5


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2)
        return 42

    p = env.process(proc())
    assert env.run(until=p) == 42
    assert env.now == 2


def test_process_join():
    env = Environment()
    log = []

    def child():
        yield env.timeout(3)
        return "done"

    def parent():
        result = yield env.process(child())
        log.append((env.now, result))

    env.process(parent())
    env.run()
    assert log == [(3, "done")]


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        v = yield ev
        got.append((env.now, v))

    def trigger():
        yield env.timeout(4)
        ev.succeed("sig")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert got == [(4, "sig")]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def trigger():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_propagates_to_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(proc())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_process_exception_propagates_to_joiner():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1)
        raise KeyError("k")

    def parent():
        try:
            yield env.process(child())
        except KeyError:
            caught.append(env.now)

    env.process(parent())
    env.run()
    assert caught == [1]


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
            log.append("overslept")
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(target):
        yield env.timeout(5)
        target.interrupt("wake")

    p = env.process(sleeper())
    env.process(interrupter(p))
    env.run()
    assert log == [(5, "wake")]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_all_of_waits_for_all():
    env = Environment()
    log = []

    def proc():
        t1 = env.timeout(3, value="a")
        t2 = env.timeout(7, value="b")
        results = yield env.all_of([t1, t2])
        log.append((env.now, sorted(results.values())))

    env.process(proc())
    env.run()
    assert log == [(7, ["a", "b"])]


def test_any_of_fires_on_first():
    env = Environment()
    log = []

    def proc():
        t1 = env.timeout(3, value="fast")
        t2 = env.timeout(7, value="slow")
        results = yield env.any_of([t1, t2])
        log.append((env.now, list(results.values())))

    env.process(proc())
    env.run()
    assert log == [(3, ["fast"])]


def test_yield_already_processed_event_resumes_same_time():
    env = Environment()
    log = []
    ev = env.event()
    ev.succeed("early")

    def proc():
        yield env.timeout(2)  # let ev get processed first
        v = yield ev
        log.append((env.now, v))

    env.process(proc())
    env.run()
    assert log == [(2, "early")]


def test_schedule_at_absolute():
    env = Environment()
    ev = env.event()
    env.schedule_at(ev, 9.0)
    got = []

    def proc():
        yield ev
        got.append(env.now)

    env.process(proc())
    env.run()
    assert got == [9.0]


def test_schedule_at_past_rejected():
    env = Environment(initial_time=10)
    with pytest.raises(ValueError):
        env.schedule_at(env.event(), 5.0)


def test_peek_and_step():
    env = Environment()
    env.timeout(4)
    assert env.peek() == 4
    env.step()
    assert env.now == 4
    assert env.peek() == float("inf")


def test_step_empty_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_run_until_past_time_rejected():
    env = Environment(initial_time=5)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_nonevent_yield_is_error():
    env = Environment()

    def proc():
        yield 42  # type: ignore[misc]

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_deadline_without_events_advances_clock():
    env = Environment()
    env.run(until=50)
    assert env.now == 50
