"""Lockstep equivalence of the kernel's four dispatch loops.

``Environment.run`` has three compiled-in variants (the inlined fast
loop, the profiled loop, the journaled loop) plus the cold ``step()``
path.  All four must execute the *same events in the same order* on the
same workload — the fast paths are allowed to change how fast the
simulator runs, never what it computes.  The journal's per-event records
give an exact event-stream fingerprint; a workload-level trace covers
the plain loop (which cannot journal).
"""

from repro.obs import Journal
from repro.sim import (
    AllOf,
    Environment,
    Interrupt,
    Resource,
    install_kernel_profiler,
)


def build_workload(env: Environment, trace: list):
    """A deterministic mix of every hot event pattern: timeouts (incl.
    zero-delay), event signalling (the now lane), priority interrupts,
    resource handoffs, schedule_at, AllOf joins and spawn churn."""
    res = Resource(env, capacity=2)
    gate = env.event()

    def ticker(name, delay, n):
        for i in range(n):
            yield env.timeout(delay)
            trace.append((env.now, name, i))

    def zero_delay(name, n):
        for i in range(n):
            yield env.timeout(0)
            trace.append((env.now, name, i))

    def signaller():
        yield env.timeout(0.5)
        gate.succeed("open")
        trace.append((env.now, "signalled", 0))

    def waiter(name):
        v = yield gate
        trace.append((env.now, name, v))
        with res.request() as req:
            yield req
            yield env.timeout(0.25)
        trace.append((env.now, name, "released"))

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            trace.append((env.now, "interrupted", exc.cause))

    def interrupter(victim):
        yield env.timeout(1.5)
        victim.interrupt("wake")

    def spawner(n):
        children = [env.process(ticker(f"child{i}", 0.1 + i * 0.01, 3))
                    for i in range(n)]
        yield AllOf(env, children)
        trace.append((env.now, "joined", n))

    def scheduled():
        ev = env.event()
        env.schedule_at(ev, 2.0)
        yield ev
        trace.append((env.now, "at", None))

    for i in range(4):
        env.process(ticker(f"t{i}", 0.3 + i * 1e-3, 8))
    env.process(zero_delay("z", 5))
    env.process(signaller())
    for i in range(3):
        env.process(waiter(f"w{i}"))
    victim = env.process(sleeper())
    env.process(interrupter(victim))
    env.process(spawner(4))
    env.process(scheduled())


def _journal_events(journal):
    return [rec for rec in journal.records if rec[0] == "event"]


def _run_plain():
    env, trace = Environment(), []
    build_workload(env, trace)
    env.run()
    return env, trace, None


def _run_profiled():
    env, trace = Environment(), []
    build_workload(env, trace)
    jr = Journal(period=0.5).install(env)
    install_kernel_profiler(env)
    env.run()
    return env, trace, jr


def _run_journaled():
    env, trace = Environment(), []
    build_workload(env, trace)
    jr = Journal(period=0.5).install(env)
    env.run()
    return env, trace, jr


def _run_stepped():
    env, trace = Environment(), []
    build_workload(env, trace)
    jr = Journal(period=0.5).install(env)
    while len(env._queue):
        env.step()
    return env, trace, jr


def test_all_four_loops_execute_identical_event_sequences():
    runs = {name: fn() for name, fn in [
        ("plain", _run_plain), ("profiled", _run_profiled),
        ("journaled", _run_journaled), ("stepped", _run_stepped)]}

    ref_env, ref_trace, _ = runs["plain"]
    for name, (env, trace, _jr) in runs.items():
        assert trace == ref_trace, f"{name} diverged from the plain loop"
        assert env.now == ref_env.now, name
        assert env.events_scheduled == ref_env.events_scheduled, name

    # Event-by-event: the three journal-capable loops must produce the
    # exact same (idx, t, proc, class) stream.
    ref_events = _journal_events(runs["journaled"][2])
    assert ref_events, "journal recorded no events"
    for name in ("profiled", "stepped"):
        assert _journal_events(runs[name][2]) == ref_events, name


def test_lockstep_holds_under_forced_calendar_mode(monkeypatch):
    ref = _run_journaled()
    monkeypatch.setenv("REPRO_SCHED", "cal")
    forced = {name: fn() for name, fn in [
        ("journaled", _run_journaled), ("profiled", _run_profiled),
        ("stepped", _run_stepped), ("plain", _run_plain)]}
    for name, (env, trace, jr) in forced.items():
        assert trace == ref[1], f"forced-cal {name} diverged"
        assert env.now == ref[0].now
        if jr is not None:
            assert _journal_events(jr) == _journal_events(ref[2]), name
