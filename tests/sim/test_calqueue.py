"""CalendarQueue unit tests: ordering, mode transitions, the now lane.

The queue's contract is a *total order* over ``(time, priority, seq)``
identical to a binary heap's, regardless of which internal structure an
entry lands in (current bucket, future bucket, far-future overflow heap,
or the now lane).  These tests drive the structures directly through the
same push seam the kernel inlines; the hypothesis property test in
``tests/prop/test_scheduler_order.py`` fuzzes the same contract.
"""

from heapq import heappush

import pytest

from repro.sim.calqueue import (
    _FAR_SPAN,
    _MAX_FALLBACKS,
    _RESIZE_EVERY,
    CalendarQueue,
)

INF = float("inf")


def seam_push(q: CalendarQueue, entry: tuple) -> None:
    """The kernel's inlined push seam (see Environment._schedule)."""
    if q._cal:
        q.push(entry)
    else:
        heappush(q._heap, entry)
        if len(q._heap) > q._upgrade_at:
            q._consider_upgrade()


def drain(q: CalendarQueue) -> list:
    out = []
    while len(q):
        out.append(q._pop_entry())
    return out


def entries(seq_times, prio=1):
    return [(t, prio, i, f"e{i}") for i, t in enumerate(seq_times)]


# -- heap mode ---------------------------------------------------------------

def test_heap_mode_orders_by_time_priority_seq():
    q = CalendarQueue(force="heap")
    es = [(5.0, 1, 0, "a"), (1.0, 1, 1, "b"), (1.0, 0, 2, "c"),
          (1.0, 1, 3, "d"), (INF, 1, 4, "e")]
    for e in es:
        seam_push(q, e)
    assert drain(q) == sorted(es)
    assert q.stats()["mode"] == "heap"


def test_forced_heap_never_upgrades():
    q = CalendarQueue(force="heap")
    for e in entries(float(i % 37) for i in range(512)):
        seam_push(q, e)
    assert not q._cal
    assert q.stats()["upgrades"] == 0


# -- calendar mode -----------------------------------------------------------

def test_forced_cal_upgrades_and_preserves_total_order():
    q = CalendarQueue(force="cal")
    es = entries((i * 0.37) % 100.0 for i in range(2000))
    for e in es:
        seam_push(q, e)
    assert q._cal
    assert q.stats()["upgrades"] == 1
    assert drain(q) == sorted(es)


def test_far_future_entries_route_through_overflow_heap():
    q = CalendarQueue(force="cal")
    near = entries(float(i % 50) for i in range(200))
    for e in near:
        seam_push(q, e)
    assert q._cal
    # Far beyond the calendar span: must land in the overflow heap, not
    # materialise thousands of empty pages.
    far_t = (q._cur_idx + 1 + _FAR_SPAN) * q._width
    far = [(far_t * 4 + i, 1, 10_000 + i, f"far{i}") for i in range(50)]
    for e in far:
        seam_push(q, e)
    assert q.stats()["far_pending"] == 50
    assert drain(q) == sorted(near + far)


def test_infinity_entries_serve_last_in_seq_order():
    q = CalendarQueue(force="cal")
    es = entries([3.0, 1.0, INF, 2.0, INF, INF])
    for e in es:
        seam_push(q, e)
    assert drain(q) == sorted(es)


def test_all_infinite_heap_refuses_upgrade():
    # Width cannot be derived from an all-inf population; the queue must
    # stay in heap mode rather than divide by a zero span.
    q = CalendarQueue(force="cal")
    es = [(INF, 1, i, f"e{i}") for i in range(8)]
    for e in es:
        seam_push(q, e)
    assert not q._cal
    assert drain(q) == sorted(es)


def test_resize_retunes_width_without_reordering():
    q = CalendarQueue(force="cal")
    # Tight cluster first so the derived width is tiny, then a long tail
    # of sparse entries: refill occupancy collapses below the band and a
    # resize must trigger — with the full order still exact.
    es = entries([i * 1e-4 for i in range(64)]
                 + [10.0 + i * 3.0 for i in range(3 * _RESIZE_EVERY)])
    for e in es:
        seam_push(q, e)
    assert drain(q) == sorted(es)
    assert q.stats()["resizes"] >= 1


def test_auto_mode_locks_heap_after_repeated_fallbacks():
    q = CalendarQueue()
    assert q._forced is None
    for _ in range(_MAX_FALLBACKS):
        q._cal = True          # simulate an upgrade the population undoes
        q._downgrade()
    assert q._no_cal
    assert q.stats()["heap_mode_locked"]
    assert q.stats()["fallback_rate"] == 0.0 or q.stats()["downgrades"] >= 1
    # Locked: even a huge population never upgrades again.
    for e in entries(float(i % 997) for i in range(100)):
        seam_push(q, e)
    assert not q._cal


# -- the now lane ------------------------------------------------------------

def test_now_lane_interleaves_with_timed_entries():
    q = CalendarQueue(force="heap")
    seam_push(q, (0.0, 1, 0, "timed0"))
    seam_push(q, (1.0, 1, 1, "timed1"))
    q.push_now((0.0, 1, 2, "now2"))
    q.push_now((0.0, 1, 3, "now3"))
    seam_push(q, (0.0, 0, 4, "interrupt"))   # priority 0 beats the lane
    assert [e[3] for e in drain(q)] == [
        "interrupt", "timed0", "now2", "now3", "timed1"]


def test_now_lane_alone_pops_in_fifo_order():
    q = CalendarQueue()
    for i in range(16):
        q.push_now((0.0, 1, i, f"n{i}"))
    assert len(q) == 16
    assert [e[2] for e in drain(q)] == list(range(16))


def test_now_lane_defers_to_earlier_seq_infinite_far_entry():
    # The documented +inf edge: timed structures exhausted, a +inf entry
    # waits in the far heap with a *smaller* seq than a +inf now-lane
    # entry.  The page must turn before the lane is served.
    q = CalendarQueue(force="cal")
    for e in entries([1.0, 2.0, 3.0] * 4):
        seam_push(q, e)
    assert q._cal
    seam_push(q, (INF, 1, 100, "far-first"))
    drained = []
    while len(q) > 1:
        drained.append(q._pop_entry())
    q.push_now((INF, 1, 200, "now-second"))
    assert [e[3] for e in drain(q)] == ["far-first", "now-second"]


def test_now_lane_survives_mode_transitions():
    q = CalendarQueue(force="cal")
    q.push_now((0.0, 1, 0, "n0"))
    es = entries(((i * 0.11) % 40.0 for i in range(1500)), prio=1)
    timed = [(t, p, s + 1, v) for t, p, s, v in es]
    for e in timed:
        seam_push(q, e)          # triggers the heap->cal migration
    assert q._cal
    assert q.stats()["now_pending"] == 1
    out = drain(q)
    assert out == sorted(timed + [(0.0, 1, 0, "n0")])


def test_peek_time_agrees_with_pop_everywhere():
    q = CalendarQueue(force="cal")
    es = entries((i * 1.7) % 23.0 for i in range(500))
    for e in es:
        seam_push(q, e)
    q.push_now((0.0, 1, 10_000, "now"))
    while len(q):
        t = q.peek_time()
        e = q._pop_entry()
        assert e[0] == t
    assert q.peek_time() == INF


def test_len_counts_every_structure():
    q = CalendarQueue(force="cal")
    for e in entries(float(i) for i in range(300)):
        seam_push(q, e)
    q.push_now((0.0, 1, 1000, "n"))
    assert len(q) == 301
    q._pop_entry()
    assert len(q) == 300


def test_stats_reports_queue_discipline_keys():
    q = CalendarQueue(force="cal")
    for e in entries(float(i % 10) for i in range(100)):
        seam_push(q, e)
    s = q.stats()
    for key in ("mode", "forced", "pending", "now_pending", "width",
                "bucket_count", "far_pending", "avg_bucket_occupancy",
                "refills", "insorts", "far_pushed", "upgrades",
                "downgrades", "resizes", "fallback_rate",
                "heap_mode_locked"):
        assert key in s
    assert s["mode"] == "cal"
    assert s["forced"] == "cal"
    assert s["pending"] == 100


def test_pop_from_empty_raises_indexerror():
    q = CalendarQueue()
    with pytest.raises(IndexError):
        q._pop_entry()


def test_repro_sched_env_var_controls_mode(monkeypatch):
    monkeypatch.setenv("REPRO_SCHED", "heap")
    assert CalendarQueue()._forced == "heap"
    monkeypatch.setenv("REPRO_SCHED", "cal")
    assert CalendarQueue()._forced == "cal"
    monkeypatch.setenv("REPRO_SCHED", "bogus")
    with pytest.raises(ValueError):
        CalendarQueue()
