"""Tests for PeriodicSampler and RateMeter."""

import pytest

from repro.sim import Environment, PeriodicSampler, RateMeter


def test_rate_meter_deltas():
    m = RateMeter()
    m.add()
    m.add(2)
    assert m.take_delta() == 3
    assert m.take_delta() == 0
    m.add(5)
    assert m.take_delta() == 5
    assert m.total == 8


def test_sampler_collects_once_per_period():
    env = Environment()
    meter = RateMeter()

    def workload():
        for _ in range(10):
            yield env.timeout(0.25)
            meter.add()

    env.process(workload())
    sampler = PeriodicSampler(env, meter.take_delta, period=1.0)
    env.run(until=3.0)
    assert sampler.times == [1.0, 2.0]
    # 4 ops per second at 0.25s spacing; op at t=1.0 lands after the sample
    # at t=1.0 depending on ordering — totals must still add up.
    assert sum(sampler.values) + meter.take_delta() == 10


def test_sampler_stop():
    env = Environment()
    sampler = PeriodicSampler(env, lambda: 1.0, period=1.0)

    def stopper():
        yield env.timeout(2.5)
        sampler.stop()

    env.process(stopper())
    env.run(until=10)
    assert sampler.times == [1.0, 2.0]


def test_sampler_invalid_period():
    env = Environment()
    with pytest.raises(ValueError):
        PeriodicSampler(env, lambda: 0.0, period=0)
