"""Tests for PeriodicSampler and RateMeter."""

import pytest

from repro.sim import Environment, PeriodicSampler, RateMeter


def test_rate_meter_deltas():
    m = RateMeter()
    m.add()
    m.add(2)
    assert m.take_delta() == 3
    assert m.take_delta() == 0
    m.add(5)
    assert m.take_delta() == 5
    assert m.total == 8


def test_sampler_collects_once_per_period():
    env = Environment()
    meter = RateMeter()

    def workload():
        for _ in range(10):
            yield env.timeout(0.25)
            meter.add()

    env.process(workload())
    sampler = PeriodicSampler(env, meter.take_delta, period=1.0)
    env.run(until=3.0)
    assert sampler.times == [1.0, 2.0]
    # 4 ops per second at 0.25s spacing; op at t=1.0 lands after the sample
    # at t=1.0 depending on ordering — totals must still add up.
    assert sum(sampler.values) + meter.take_delta() == 10


def test_sampler_stop():
    env = Environment()
    sampler = PeriodicSampler(env, lambda: 1.0, period=1.0)

    def stopper():
        yield env.timeout(2.5)
        sampler.stop()

    env.process(stopper())
    env.run(until=10)
    assert sampler.times == [1.0, 2.0]


def test_sampler_invalid_period():
    env = Environment()
    with pytest.raises(ValueError):
        PeriodicSampler(env, lambda: 0.0, period=0)


def test_sampler_flush_records_partial_bucket():
    # A horizon that is not a period multiple leaves a partial bucket;
    # flush must record it at the current clock, not drop it.
    env = Environment()
    meter = RateMeter()

    def workload():
        for _ in range(5):
            yield env.timeout(0.5)
            meter.add()

    env.process(workload())
    sampler = PeriodicSampler(env, meter.take_delta, period=1.0)
    env.run(until=2.6)  # exclusive deadline: the op at t=2.5 still fires
    assert sampler.times == [1.0, 2.0]
    assert sampler.flush() is True
    assert sampler.times == [1.0, 2.0, 2.6]
    assert sum(sampler.values) == 5


def test_sampler_flush_idempotent_and_noop_on_tick():
    env = Environment()
    sampler = PeriodicSampler(env, lambda: 1.0, period=1.0)
    env.run(until=3.0)
    # run(until=3.0) is exclusive of the deadline, so the t=3.0 tick has
    # not fired; the clock sits at 3.0 past the last recorded tick at 2.0.
    assert sampler.times == [1.0, 2.0]
    assert sampler.flush() is True
    assert sampler.times == [1.0, 2.0, 3.0]
    # Second flush at the same clock appends nothing.
    assert sampler.flush() is False
    assert sampler.times == [1.0, 2.0, 3.0]


def test_sampler_flush_before_first_tick():
    env = Environment()
    sampler = PeriodicSampler(env, lambda: 7.0, period=10.0)
    # At creation time there is nothing to flush.
    assert sampler.flush() is False
    env.run(until=4.0)
    assert sampler.flush() is True
    assert sampler.times == [4.0]
    assert sampler.values == [7.0]


def test_sampler_stop_flush_opt_in():
    env = Environment()
    sampler = PeriodicSampler(env, lambda: 1.0, period=1.0)
    env.run(until=2.5)
    sampler.stop()              # default: partial bucket dropped
    assert sampler.times == [1.0, 2.0]
    sampler2 = PeriodicSampler(env, lambda: 1.0, period=1.0)
    env.run(until=4.7)
    sampler2.stop(flush=True)   # opt-in: partial bucket kept
    assert sampler2.times[-1] == pytest.approx(4.7)
