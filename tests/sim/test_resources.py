"""Unit tests for Resource / PriorityResource / Container / Store."""

import pytest

from repro.sim import (Container, Environment, Interrupt, PriorityResource,
                       Resource, Store)


def test_resource_capacity_enforced():
    env = Environment()
    res = Resource(env, capacity=2)
    active = []
    peak = []

    def worker(i):
        with res.request() as req:
            yield req
            active.append(i)
            peak.append(len(res.users))
            yield env.timeout(10)
            active.remove(i)

    for i in range(5):
        env.process(worker(i))
    env.run()
    assert max(peak) == 2
    assert active == []


def test_resource_fifo_grant_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(i):
        with res.request() as req:
            yield req
            order.append(i)
            yield env.timeout(1)

    for i in range(4):
        env.process(worker(i))
    env.run()
    assert order == [0, 1, 2, 3]


def test_resource_capacity_growth_grants_waiters():
    env = Environment()
    res = Resource(env, capacity=1)
    started = []

    def worker(i):
        with res.request() as req:
            yield req
            started.append((env.now, i))
            yield env.timeout(100)

    def grower():
        yield env.timeout(5)
        res.capacity = 3

    for i in range(3):
        env.process(worker(i))
    env.process(grower())
    env.run(until=50)
    assert started == [(0, 0), (5, 1), (5, 2)]


def test_resource_shrink_does_not_revoke():
    env = Environment()
    res = Resource(env, capacity=2)
    held = []

    def worker(i):
        with res.request() as req:
            yield req
            held.append(i)
            yield env.timeout(10)

    env.process(worker(0))
    env.process(worker(1))

    def shrinker():
        yield env.timeout(1)
        res.capacity = 1
        assert len(res.users) == 2  # both still hold slots

    env.process(shrinker())
    env.run()


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)
    res = Resource(env, capacity=1)
    with pytest.raises(ValueError):
        res.capacity = 0


def test_release_queued_request_cancels():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    env.process(holder())

    def canceller():
        yield env.timeout(1)
        req = res.request()  # queued behind holder
        req.cancel()
        assert len(res.queue) == 0

    env.process(canceller())

    def late(i):
        yield env.timeout(2)
        with res.request() as req:
            yield req
            order.append(i)

    env.process(late("late"))
    env.run()
    assert order == ["late"]


def test_double_release_is_noop():
    env = Environment()
    res = Resource(env, capacity=1)

    def worker():
        req = res.request()
        yield req
        req.release()
        req.release()

    env.process(worker())
    env.run()
    assert res.count == 0


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(10)

    def worker(name, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder())
    env.process(worker("low", 5, 1))
    env.process(worker("high", 1, 2))  # arrives later but higher priority
    env.run()
    assert order == ["high", "low"]


def test_container_put_get():
    env = Environment()
    c = Container(env, capacity=100, init=50)
    log = []

    def getter():
        yield c.get(70)  # must wait for a put
        log.append(("got", env.now, c.level))

    def putter():
        yield env.timeout(3)
        yield c.put(30)

    env.process(getter())
    env.process(putter())
    env.run()
    assert log == [("got", 3, 10)]


def test_container_put_blocks_at_capacity():
    env = Environment()
    c = Container(env, capacity=10, init=10)
    log = []

    def putter():
        yield c.put(5)
        log.append(env.now)

    def drainer():
        yield env.timeout(2)
        yield c.get(6)

    env.process(putter())
    env.process(drainer())
    env.run()
    assert log == [2]


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)
    c = Container(env, capacity=10)
    with pytest.raises(ValueError):
        c.put(-1)
    with pytest.raises(ValueError):
        c.get(-1)


def test_store_fifo():
    env = Environment()
    s = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield env.timeout(1)
            yield s.put(i)

    def consumer():
        for _ in range(3):
            item = yield s.get()
            got.append((env.now, item))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [(1, 0), (2, 1), (3, 2)]


def test_store_capacity_blocks_put():
    env = Environment()
    s = Store(env, capacity=1)
    log = []

    def producer():
        yield s.put("a")
        yield s.put("b")  # blocks until consumer takes "a"
        log.append(env.now)

    def consumer():
        yield env.timeout(5)
        yield s.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [5]
    assert list(s.items) == ["b"]


def test_store_len():
    env = Environment()
    s = Store(env)
    s.put("x")
    s.put("y")
    assert len(s) == 2


def test_interrupt_while_waiting_on_request():
    """An Interrupt delivered while queued detaches the waiter; cancelling
    the request must free the queue slot so later arrivals still get the
    resource (no leaked grant to a dead waiter)."""
    env = Environment()
    res = Resource(env, capacity=1)
    log = []
    waiter_proc = None

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def waiter():
        req = res.request()
        try:
            yield req
            log.append("granted")
        except Interrupt:
            req.cancel()
            log.append("interrupted")

    def poker():
        yield env.timeout(1)
        waiter_proc.interrupt("give up")

    def late():
        yield env.timeout(2)
        with res.request() as req:
            yield req
            log.append("late")

    env.process(holder())
    waiter_proc = env.process(waiter())
    env.process(poker())
    env.process(late())
    env.run()
    assert log == ["interrupted", "late"]
    assert len(res.queue) == 0
    assert res.users == []


def test_interrupted_waiter_grant_not_double_delivered():
    """If the holder releases at the same instant the waiter is interrupted,
    the waiter must see exactly one outcome (the Interrupt), and the grant
    must flow to the next queued request instead."""
    env = Environment()
    res = Resource(env, capacity=1)
    log = []
    waiter_proc = None

    def holder():
        req = res.request()
        yield req
        yield env.timeout(1)
        res.release(req)

    def waiter():
        req = res.request()
        try:
            yield req
            log.append("granted")
        except Interrupt:
            # The grant may have already fired: release() handles both the
            # still-queued and the just-granted case.
            req.release()
            log.append("interrupted")

    def poker():
        # Interrupt lands at t=1, racing the holder's release.
        yield env.timeout(1)
        waiter_proc.interrupt()

    def other():
        with res.request() as req:
            yield req
            log.append("other")

    env.process(holder())
    waiter_proc = env.process(waiter())
    env.process(poker())
    env.process(other())
    env.run()
    assert log.count("interrupted") + log.count("granted") == 1
    assert "other" in log
