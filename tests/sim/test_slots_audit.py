"""Audit: every hot kernel class is fully ``__slots__``-ed.

Event recycling and the inlined dispatch loops bank on instances having
no ``__dict__`` — a single slotless class in the hierarchy silently
re-grows per-instance dicts, costs ~56 bytes and a dict allocation per
event, and defeats the freelists' refcount checks.  This audit fails the
moment anyone adds an unslotted attribute or base class.
"""

import pytest

from repro.sim import core, resources
from repro.sim.calqueue import CalendarQueue

HOT_CLASSES = [
    core.Event,
    core.Timeout,
    core.Process,
    core._ProcessResume,
    core._MultiEvent,
    core.AllOf,
    core.AnyOf,
    core.MacroStats,
    core.Environment,
    resources.Request,
    resources.PriorityRequest,
    CalendarQueue,
]


@pytest.mark.parametrize("cls", HOT_CLASSES,
                         ids=lambda c: c.__name__)
def test_hot_class_declares_slots_through_whole_mro(cls):
    for klass in cls.__mro__:
        if klass is object:
            continue
        assert "__slots__" in vars(klass), (
            f"{cls.__name__}: base {klass.__name__} has no __slots__ — "
            f"instances grow a __dict__")


def test_environment_hot_attributes_live_in_slots():
    # Environment deliberately keeps a __dict__ for extension layers
    # (faults, tracer, telemetry hang state off the env) — but the
    # kernel-hot attributes must stay in slots, not fall into it.
    env = core.Environment()
    for attr in ("_now", "_queue", "_seq", "_timeout_pool", "_event_pool",
                 "_presume_pool", "_active_process"):
        assert attr not in env.__dict__, f"{attr} fell out of __slots__"
        assert hasattr(env, attr)


@pytest.mark.parametrize(
    "cls", [c for c in HOT_CLASSES if c is not core.Environment],
    ids=lambda c: c.__name__)
def test_hot_class_instances_have_no_dict(cls):
    env = core.Environment()
    if cls is core.MacroStats:
        obj = env.macro
    elif cls is CalendarQueue:
        obj = env._queue
    elif cls is core.Timeout:
        obj = env.timeout(1.0)
    elif cls is core.Process:
        def gen():
            yield env.timeout(1.0)
        obj = env.process(gen())
    elif cls in (core.AllOf, core.AnyOf):
        obj = cls(env, [env.event()])
    elif cls is resources.Request:
        obj = resources.Resource(env, capacity=1).request()
    elif cls is resources.PriorityRequest:
        obj = resources.PriorityResource(env, capacity=1).request(priority=1)
    elif cls is core._MultiEvent:
        obj = core._MultiEvent(env, [env.event()])
    elif cls is core._ProcessResume:
        obj = core._ProcessResume(env)
    else:
        obj = cls(env)
    assert not hasattr(obj, "__dict__"), f"{cls.__name__} grew a __dict__"
