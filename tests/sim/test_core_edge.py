"""Edge-case tests for the DES kernel (failure paths, composites)."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_anyof_failing_child_propagates():
    env = Environment()
    caught = []

    def failer():
        yield env.timeout(1)
        raise ValueError("child failed")

    def waiter():
        p = env.process(failer())
        t = env.timeout(5)
        try:
            yield env.any_of([p, t])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())
    env.run()
    assert caught == ["child failed"]


def test_allof_failing_child_propagates():
    env = Environment()
    caught = []

    def failer():
        yield env.timeout(1)
        raise KeyError("boom")

    def waiter():
        try:
            yield env.all_of([env.process(failer()), env.timeout(3)])
        except KeyError:
            caught.append(env.now)

    env.process(waiter())
    env.run()
    assert caught == [1]


def test_allof_empty_fires_immediately():
    env = Environment()
    done = []

    def waiter():
        result = yield env.all_of([])
        done.append((env.now, result))

    env.process(waiter())
    env.run()
    assert done == [(0, {})]


def test_yield_already_failed_processed_event():
    env = Environment()
    ev = env.event()
    caught = []

    def observer():
        # let the failure get processed first
        yield env.timeout(2)
        try:
            yield ev
        except RuntimeError:
            caught.append(env.now)

    def failer():
        yield env.timeout(1)
        ev.defuse()
        ev.fail(RuntimeError("late"))

    env.process(observer())
    env.process(failer())
    env.run()
    assert caught == [2]


def test_interrupt_cause_accessible():
    env = Environment()
    causes = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            causes.append(intr.cause)

    p = env.process(sleeper())

    def interrupter():
        yield env.timeout(1)
        p.interrupt({"reason": "crash"})

    env.process(interrupter())
    env.run()
    assert causes == [{"reason": "crash"}]


def test_interrupted_process_can_keep_running():
    env = Environment()
    log = []

    def resilient():
        for _ in range(3):
            try:
                yield env.timeout(10)
                log.append(("slept", env.now))
            except Interrupt:
                log.append(("poked", env.now))

    p = env.process(resilient())

    def poker():
        yield env.timeout(1)
        p.interrupt()

    env.process(poker())
    env.run()
    assert log[0] == ("poked", 1)
    assert log[1] == ("slept", 11)


def test_process_is_alive_lifecycle():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_container_multiple_waiters_fifo():
    from repro.sim import Container
    env = Environment()
    c = Container(env, capacity=100, init=0)
    order = []

    def getter(name, amount):
        yield c.get(amount)
        order.append(name)

    env.process(getter("first", 10))
    env.process(getter("second", 10))

    def feeder():
        yield env.timeout(1)
        yield c.put(10)
        yield env.timeout(1)
        yield c.put(10)

    env.process(feeder())
    env.run()
    assert order == ["first", "second"]


def test_interrupt_racing_triggered_target_no_double_resume():
    """Interrupting a process whose target timeout is already in the heap
    (triggered, same timestamp) must deliver the Interrupt exactly once and
    never resume the process again when the stale timeout pops."""
    env = Environment()
    log = []
    victim = None

    def interrupter():
        yield env.timeout(1)
        victim.interrupt("race")

    def victim_proc():
        try:
            yield env.timeout(1)
            log.append("timeout")
        except Interrupt as exc:
            assert exc.cause == "race"
            log.append("interrupt")
        # If the stale timeout resumed us a second time, this yield would
        # receive the wrong event and the trailing marker would misorder.
        yield env.timeout(10)
        log.append("done")

    env.process(interrupter())
    victim = env.process(victim_proc())
    env.run()
    assert log == ["interrupt", "done"]
    assert env.now == 11.0


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    assert not p.is_alive
    with pytest.raises(SimulationError):
        p.interrupt("too late")
