"""Crash-sweep coverage for the resilience state machine.

The resilience-enabled harness workload walks the full degradation loop
(DEGRADED -> RECOVERING -> HEALTHY) and a background-error/resume()
episode; crashing at each state-machine site must still pass the
differential oracle after recovery.
"""

import pytest

from repro.faults.harness import KvaccelFaultHarness

STATE_SITES = [
    "resil.degraded.enter",
    "resil.recovering.enter",
    "resil.healthy.enter",
    "db.bg_error.set",
    "db.resume",
]


@pytest.fixture(scope="module")
def harness():
    return KvaccelFaultHarness(resilience=True)


def test_workload_reaches_every_state_site(harness):
    sites = {hit.site for hit in harness.trace()}
    for site in STATE_SITES:
        assert site in sites, f"{site} not reached by the workload"


def test_workload_walks_the_full_loop(harness):
    run = harness.run_clean()
    states = [s for _, s in run.db.resil.transitions]
    assert states == ["degraded", "recovering", "healthy"]
    assert run.db.main.background_error is None   # resume() cleared it
    run.db.close()


@pytest.mark.parametrize("site", STATE_SITES)
def test_crash_at_state_site_recovers_consistently(harness, site):
    report = harness.crash_at(site)
    assert report.crashed, f"armed site {site} never fired"
    assert report.ok, report.describe()


def test_default_harness_unchanged_without_resilience():
    """resilience=False must not perturb the existing site trace."""
    plain = KvaccelFaultHarness()
    sites = {hit.site for hit in plain.trace()}
    for site in STATE_SITES:
        assert site not in sites
