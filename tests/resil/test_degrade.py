"""The HEALTHY -> DEGRADED -> RECOVERING state machine."""

from repro.resil import (
    DEGRADED,
    DegradationManager,
    DeviceError,
    HEALTHY,
    PERSISTENT,
    RECOVERING,
    ResilienceConfig,
    STATE_GAUGE,
)
from repro.sim import Environment


def make(env=None, **kw):
    env = env or Environment()
    cfg = ResilienceConfig(degrade_error_threshold=kw.pop("threshold", 3),
                           degrade_window=kw.pop("window", 1.0),
                           recover_probation=kw.pop("probation", 0.5),
                           recover_min_successes=kw.pop("min_successes", 2))
    return env, DegradationManager(env, cfg)


def err():
    return DeviceError(PERSISTENT, site="kv.put")


def test_starts_healthy_and_allows_redirect():
    _, dm = make()
    assert dm.state == HEALTHY
    assert dm.allows_redirect()
    assert not dm.wants_drain()


def test_threshold_errors_within_window_degrade():
    env, dm = make(threshold=3)
    dm.record_error(err())
    dm.record_error(err())
    assert dm.state == HEALTHY          # below threshold
    dm.record_error(err())
    assert dm.state == DEGRADED
    assert not dm.allows_redirect()
    assert dm.wants_drain()
    assert dm.device_errors == 3


def test_window_prunes_old_errors():
    env, dm = make(threshold=3, window=1.0)

    def tick(dt):
        def g():
            yield env.timeout(dt)
        env.run(until=env.process(g()))

    dm.record_error(err())
    tick(2.0)                           # first error falls out of window
    dm.record_error(err())
    dm.record_error(err())
    assert dm.state == HEALTHY
    dm.record_error(err())
    assert dm.state == DEGRADED


def test_drain_moves_to_recovering_then_successes_close_the_loop():
    env, dm = make(threshold=1, probation=0.0, min_successes=2)
    dm.record_error(err())
    assert dm.state == DEGRADED
    dm.note_drained()
    assert dm.state == RECOVERING
    assert dm.allows_redirect()         # probation probes are admitted
    dm.record_success()
    assert dm.state == RECOVERING
    dm.record_success()
    assert dm.state == HEALTHY
    assert [s for _, s in dm.transitions] == [DEGRADED, RECOVERING, HEALTHY]


def test_error_during_probation_relapses_immediately():
    env, dm = make(threshold=1)
    dm.record_error(err())
    dm.note_drained()
    assert dm.state == RECOVERING
    dm.record_error(err())              # one error is enough: hysteresis
    assert dm.state == DEGRADED


def test_probation_time_must_elapse():
    env, dm = make(threshold=1, probation=0.5, min_successes=1)
    dm.record_error(err())
    dm.note_drained()
    dm.record_success()
    assert dm.state == RECOVERING       # successes alone are not enough

    def wait():
        yield env.timeout(1.0)
    env.run(until=env.process(wait()))
    dm.record_success()
    assert dm.state == HEALTHY


def test_note_drained_only_acts_when_degraded():
    _, dm = make()
    dm.note_drained()
    assert dm.state == HEALTHY


def test_successes_ignored_outside_probation():
    _, dm = make()
    dm.record_success()
    assert dm.state == HEALTHY
    assert dm._successes == 0


def test_force_degrade_and_reset():
    _, dm = make()
    dm.force_degrade()
    assert dm.state == DEGRADED
    dm.reset()
    assert dm.state == HEALTHY


def test_fallback_accounting():
    _, dm = make()
    dm.record_fallback()
    dm.record_fallback()
    assert dm.fallback_writes == 2


def test_state_gauge_encoding():
    assert STATE_GAUGE[HEALTHY] == 0.0
    assert STATE_GAUGE[RECOVERING] == 1.0
    assert STATE_GAUGE[DEGRADED] == 2.0


def test_state_gauge_exported_via_telemetry():
    from repro.obs import TelemetryHub

    env = Environment()
    hub = TelemetryHub(env, period=0.1).install(env)
    _, dm = make(env)
    dm.force_degrade()

    def wait():
        yield env.timeout(0.35)
    env.run(until=env.process(wait()))
    assert "resil.state" in hub.channels
    assert hub.channels["resil.state"].values[-1] == 2.0
