"""The device-error taxonomy and the injected-fault classifier."""

import pytest

from repro.faults.registry import InjectedFault
from repro.resil import (
    DeviceError,
    ERROR_KINDS,
    MEDIA,
    PERSISTENT,
    TIMEOUT,
    TRANSIENT,
    as_device_error,
    classify_injected,
)


def test_kinds_and_retryability():
    assert set(ERROR_KINDS) == {TRANSIENT, PERSISTENT, MEDIA, TIMEOUT}
    assert DeviceError(TRANSIENT).retryable
    assert DeviceError(TIMEOUT).retryable
    assert not DeviceError(PERSISTENT).retryable
    assert not DeviceError(MEDIA).retryable


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        DeviceError("flaky")


def test_message_carries_site_and_detail():
    err = DeviceError(MEDIA, site="nand.read", detail="uncorrectable")
    assert "media" in str(err)
    assert "nand.read" in str(err)
    assert "uncorrectable" in str(err)


def test_classify_injected_uses_note():
    for note, kind in (("", TRANSIENT), ("transient", TRANSIENT),
                       ("persistent", PERSISTENT), ("media", MEDIA),
                       ("timeout", TIMEOUT), ("freeform text", TRANSIENT)):
        fault = InjectedFault("kv.put.submit", 3, note=note)
        err = classify_injected(fault)
        assert err.kind == kind
        assert err.site == "kv.put.submit"


def test_as_device_error_passthrough_and_classification():
    err = DeviceError(TIMEOUT, site="kv.get")
    assert as_device_error(err) is err
    fault = InjectedFault("pcie.transfer", 1, note="persistent")
    converted = as_device_error(fault, site="kv.put")
    assert isinstance(converted, DeviceError)
    assert converted.kind == PERSISTENT
    assert converted.site == "kv.put"     # explicit site wins


def test_as_device_error_rejects_real_bugs():
    assert as_device_error(ValueError("boom")) is None
    assert as_device_error(KeyError("k")) is None
    assert as_device_error(RuntimeError("not a device status")) is None
