"""The sim-clock retry executor: schedules, deadlines, timeout races."""

import pytest

from repro.resil import (
    DeviceError,
    MEDIA,
    PERSISTENT,
    RetryExecutor,
    RetryPolicy,
    TIMEOUT,
    TRANSIENT,
    backoff_schedule,
)
from repro.sim import Environment


def run(env, gen):
    return env.run(until=env.process(gen))


def flaky_command(env, failures, kind=TRANSIENT, cost=1e-3, state=None):
    """A command generator factory failing the first ``failures`` calls."""
    state = state if state is not None else {"calls": 0}

    def factory():
        def cmd():
            state["calls"] += 1
            yield env.timeout(cost)
            if state["calls"] <= failures:
                raise DeviceError(kind, site="test.cmd")
            return ("ok", state["calls"])
        return cmd()

    return factory, state


# ----------------------------------------------------------- schedules
def test_backoff_schedule_deterministic():
    policy = RetryPolicy(max_attempts=6)
    a = backoff_schedule(policy, seed=0xC0FFEE)
    b = backoff_schedule(policy, seed=0xC0FFEE)
    assert a == b                       # bit-identical
    c = backoff_schedule(policy, seed=0xC0FFEE + 1)
    assert a != c                       # seed actually matters


def test_backoff_exponential_and_bounded():
    policy = RetryPolicy(max_attempts=8, base_delay=1e-4, max_delay=1e-3,
                         multiplier=2.0, jitter=0.5)
    sched = backoff_schedule(policy, seed=7)
    for i, delay in enumerate(sched):
        nominal = min(policy.max_delay,
                      policy.base_delay * policy.multiplier ** i)
        span = nominal * policy.jitter
        assert nominal - span <= delay <= nominal + span


def test_zero_jitter_is_pure_exponential():
    policy = RetryPolicy(max_attempts=4, base_delay=1e-4, max_delay=1.0,
                         multiplier=2.0, jitter=0.0)
    assert backoff_schedule(policy, seed=1) == [1e-4, 2e-4, 4e-4]


# -------------------------------------------------------------- retries
def test_transient_failure_retried_to_success():
    env = Environment()
    ex = RetryExecutor(env, RetryPolicy(max_attempts=4), seed=1)
    factory, state = flaky_command(env, failures=2)
    result = run(env, ex.call(factory, site="test.cmd"))
    assert result == ("ok", 3)
    assert state["calls"] == 3
    assert ex.stats.retries == 2
    assert ex.stats.errors == 2
    assert ex.stats.by_kind == {TRANSIENT: 2}


def test_retry_sleeps_on_sim_clock():
    env = Environment()
    policy = RetryPolicy(max_attempts=4, jitter=0.0, base_delay=1e-3,
                         max_delay=1e-2)
    ex = RetryExecutor(env, policy, seed=1)
    factory, _ = flaky_command(env, failures=2, cost=1e-4)
    run(env, ex.call(factory))
    # 3 attempts x 1e-4 command cost + backoffs of 1e-3 and 2e-3.
    assert env.now == pytest.approx(3e-4 + 1e-3 + 2e-3)


def test_nonretryable_surfaces_immediately():
    for kind in (PERSISTENT, MEDIA):
        env = Environment()
        ex = RetryExecutor(env, RetryPolicy(max_attempts=4), seed=1)
        factory, state = flaky_command(env, failures=99, kind=kind)
        with pytest.raises(DeviceError) as exc_info:
            run(env, ex.call(factory))
        assert exc_info.value.kind == kind
        assert state["calls"] == 1          # exactly one attempt
        assert ex.stats.nonretryable == 1
        assert ex.stats.retries == 0


def test_attempt_budget_exhaustion():
    env = Environment()
    ex = RetryExecutor(env, RetryPolicy(max_attempts=3), seed=1)
    factory, state = flaky_command(env, failures=99)
    with pytest.raises(DeviceError):
        run(env, ex.call(factory))
    assert state["calls"] == 3
    assert ex.stats.exhausted == 1
    assert ex.stats.retries == 2


def test_deadline_respected():
    env = Environment()
    policy = RetryPolicy(max_attempts=10, jitter=0.0, base_delay=5e-3,
                         max_delay=5e-3, deadline=8e-3)
    ex = RetryExecutor(env, policy, seed=1)
    factory, state = flaky_command(env, failures=99, cost=1e-3)
    with pytest.raises(DeviceError):
        run(env, ex.call(factory))
    # Attempt 1 (1 ms) + backoff (5 ms) + attempt 2 (1 ms) = 7 ms spent;
    # the next backoff would land past the 8 ms deadline -> give up.
    assert state["calls"] == 2
    assert ex.stats.deadline_exceeded == 1
    assert env.now <= policy.deadline


def test_real_bugs_not_retried():
    env = Environment()
    ex = RetryExecutor(env, RetryPolicy(max_attempts=5), seed=1)
    state = {"calls": 0}

    def factory():
        def cmd():
            state["calls"] += 1
            yield env.timeout(1e-4)
            raise ValueError("logic bug")
        return cmd()

    with pytest.raises(ValueError):
        run(env, ex.call(factory))
    assert state["calls"] == 1


# ------------------------------------------------------- command timeout
def test_command_timeout_interrupts_and_retries():
    env = Environment()
    policy = RetryPolicy(max_attempts=3, jitter=0.0, base_delay=1e-4,
                         max_delay=1e-4, command_timeout=1e-3)
    ex = RetryExecutor(env, policy, seed=1)
    state = {"calls": 0}

    def factory():
        def cmd():
            state["calls"] += 1
            if state["calls"] == 1:
                yield env.timeout(1.0)      # hangs: must be cut at 1 ms
            else:
                yield env.timeout(1e-4)
            return "done"
        return cmd()

    result = run(env, ex.call(factory, site="slow.cmd"))
    assert result == "done"
    assert state["calls"] == 2
    assert ex.stats.timeouts == 1
    assert ex.stats.by_kind == {TIMEOUT: 1}
    assert env.now == pytest.approx(1e-3 + 1e-4 + 1e-4)


def test_command_timeout_exhaustion_surfaces_timeout_error():
    env = Environment()
    policy = RetryPolicy(max_attempts=2, jitter=0.0, command_timeout=1e-3)
    ex = RetryExecutor(env, policy, seed=1)

    def factory():
        def cmd():
            yield env.timeout(1.0)
        return cmd()

    with pytest.raises(DeviceError) as exc_info:
        run(env, ex.call(factory))
    assert exc_info.value.kind == TIMEOUT
    assert ex.stats.timeouts == 2


def test_completion_at_exact_deadline_is_used():
    env = Environment()
    policy = RetryPolicy(max_attempts=2, command_timeout=1e-3)
    ex = RetryExecutor(env, policy, seed=1)

    def factory():
        def cmd():
            yield env.timeout(1e-3)         # completes AT the deadline
            return "boundary"
        return cmd()

    assert run(env, ex.call(factory)) == "boundary"
    assert ex.stats.errors == 0


def test_failure_inside_timeout_race_is_classified():
    env = Environment()
    policy = RetryPolicy(max_attempts=3, jitter=0.0, base_delay=1e-4,
                         max_delay=1e-4, command_timeout=1e-2)
    ex = RetryExecutor(env, policy, seed=1)
    factory, state = flaky_command(env, failures=1, cost=1e-4)
    assert run(env, ex.call(factory)) == ("ok", 2)
    assert ex.stats.retries == 1


# -------------------------------------------------------------- seeding
def test_executor_seed_from_registry():
    from repro.faults.registry import FaultRegistry

    env = Environment()
    FaultRegistry(seed=0xABCD).install(env)
    ex = RetryExecutor(env, name="kv")
    assert ex.seed == 0xABCD


def test_executor_seed_from_environment_variable(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_SEED", "0x1234")
    env = Environment()                      # no registry installed
    ex = RetryExecutor(env, name="kv")
    assert ex.seed == 0x1234


def test_independent_streams_per_executor_name():
    env = Environment()
    a = RetryExecutor(env, seed=5, name="kv")
    b = RetryExecutor(env, seed=5, name="block")
    assert [a.rng.random() for _ in range(4)] != \
           [b.rng.random() for _ in range(4)]
