"""Chaos-soak acceptance: the storms the CI job runs, in miniature."""

import pytest

from repro.resil import DEGRADED, HEALTHY
from repro.resil.soak import SoakConfig, SoakResult, run_soak


@pytest.fixture(scope="module")
def transient():
    return run_soak(SoakConfig(mode="transient", ops=300))


@pytest.fixture(scope="module")
def persistent():
    return run_soak(SoakConfig(mode="persistent", ops=300))


def test_transient_storm_zero_data_loss(transient):
    r = transient
    assert r.ok, (r.violations, r.invariant_failures)
    assert r.acked_ops > 0
    assert not r.violations


def test_transient_storm_absorbed_by_retries(transient):
    r = transient
    assert r.final_state == HEALTHY
    assert r.injected_faults > 0          # the storm actually fired
    assert r.kv_retries > 0               # and the retry stack absorbed it
    assert r.device_errors == 0           # nothing surfaced post-retry
    assert r.health.get("degraded_mode_entered", 0) == 0
    assert r.health.get("retry_storm", 0) == 0


def test_persistent_storm_degrades_and_serves_from_main(persistent):
    r = persistent
    assert r.ok, (r.violations, r.invariant_failures)
    assert r.final_state == DEGRADED
    assert r.fallback_writes > 0          # Main-LSM served redirected writes
    assert r.device_errors > 0
    assert not r.violations               # zero data loss through the outage
    assert r.health.get("degraded_mode_entered", 0) >= 1


def test_persistent_storm_clean_rollback(persistent):
    # run_soak's internal invariants already checked Dev-LSM/metadata
    # emptiness; the ok flag plus the absence of invariant failures is
    # the assertion.
    assert persistent.invariant_failures == []


def test_soak_is_deterministic():
    a = run_soak(SoakConfig(mode="transient", ops=150, seed=77))
    b = run_soak(SoakConfig(mode="transient", ops=150, seed=77))
    assert a.to_dict() == b.to_dict()


def test_soak_config_validation():
    with pytest.raises(ValueError):
        SoakConfig(mode="meteor")
    with pytest.raises(ValueError):
        SoakConfig(ops=0)
    with pytest.raises(ValueError):
        SoakConfig(fault_rate=1.5)


def test_result_round_trip_shape():
    r = SoakResult(mode="transient", seed=1)
    d = r.to_dict()
    assert d["ok"] is True
    assert set(d) >= {"mode", "seed", "acked_ops", "final_state",
                      "violations", "invariant_failures", "health_events"}
