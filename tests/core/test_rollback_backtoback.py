"""Back-to-back write stalls: a second stall arriving mid-rollback.

Paper Section V-D: while a rollback is merging Dev-LSM entries back into
the Main-LSM, redirection is suspended — a fresh stall verdict must not
start routing writes to the device that is about to be reset.  These
tests drive that window explicitly (daemons stopped, stall verdict set by
hand) and check that no write is lost across two full stall/rollback
cycles, for both rollback schemes.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_kvaccel  # noqa: E402

from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


def _val(tag, i):
    return (b"%s:%04d;" % (tag, i)) * 20


@pytest.mark.parametrize("scheme", ["eager", "lazy"])
def test_second_stall_mid_rollback_loses_nothing(scheme):
    env = Environment()
    db, ssd, cpu = small_kvaccel(env, rollback=scheme)
    db.detector.stop()
    db.rollback_manager.stop()
    model = {}

    def put(i, tag):
        key = encode_key(i)
        model[key] = _val(tag, i)
        yield from db.put(key, model[key])

    def driver():
        # First stall: a burst of redirected writes lands in the Dev-LSM.
        db.detector.stall_condition = True
        for i in range(30):
            yield from put(i, b"first")
        db.detector.stall_condition = False

        # Kick off the first rollback concurrently and catch it mid-merge.
        rb = env.process(db.rollback_manager.rollback_once())
        while not db.rollback_manager.in_progress:
            yield env.timeout(0.0002)

        # Second stall arrives while the merge is still running.  With
        # redirection suspended these overwrites must take the normal
        # Main-LSM path — and must not be shadowed by the older values
        # the rollback is merging at the same time.
        db.detector.stall_condition = True
        assert db.rollback_manager.in_progress
        for i in range(10, 40):
            yield from put(i, b"mid")
        assert ssd.kv.lost_commands == 0

        yield rb
        # Still stalled, rollback done: redirection resumes for new writes.
        for i in range(5, 25):
            yield from put(i, b"second")
        assert len(db.metadata) > 0

        db.detector.stall_condition = False
        yield from db.rollback_manager.rollback_once()

        for key, want in sorted(model.items()):
            got = yield from db.get(key)
            assert got == want, key

    run(env, driver())
    assert db.rollback_manager.rollback_count == 2
    assert db.rollback_manager.total_entries_rolled_back > 0
    assert ssd.kv.is_empty
    assert len(db.metadata) == 0
    db.close()


@pytest.mark.parametrize("scheme", ["eager", "lazy"])
def test_immediate_restall_after_rollback_completes(scheme):
    """Two complete stall/rollback cycles with zero gap between them."""
    env = Environment()
    db, ssd, cpu = small_kvaccel(env, rollback=scheme)
    db.detector.stop()
    db.rollback_manager.stop()
    model = {}

    def cycle(base, tag):
        db.detector.stall_condition = True
        for i in range(base, base + 20):
            key = encode_key(i % 25)          # overlapping key range
            model[key] = _val(tag, i)
            yield from db.put(key, model[key])
        db.detector.stall_condition = False
        yield from db.rollback_manager.rollback_once()

    def driver():
        yield from cycle(0, b"one")
        yield from cycle(10, b"two")
        for key, want in sorted(model.items()):
            got = yield from db.get(key)
            assert got == want, key

    run(env, driver())
    assert db.rollback_manager.rollback_count == 2
    assert ssd.kv.is_empty
    assert len(db.metadata) == 0
    db.close()
