"""Tests for the dual-interface range query (Section V-F)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_kvaccel  # noqa: E402

from repro.core import DualIterator, range_query  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


def put_main(env, db, keys, prefix=b"m"):
    def gen():
        db.detector.stall_condition = False
        for k in keys:
            yield from db.put(encode_key(k), prefix + b"-%d" % k)
    run(env, gen())


def put_dev(env, db, keys, prefix=b"d"):
    def gen():
        db.detector.stall_condition = True
        for k in keys:
            yield from db.put(encode_key(k), prefix + b"-%d" % k)
        db.detector.stall_condition = False
    run(env, gen())


@pytest.fixture
def system():
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="disabled")
    yield env, db, ssd
    db.close()


def test_interleaved_keys_merge_in_order(system):
    env, db, _ = system
    put_main(env, db, [0, 2, 4, 6, 8])
    put_dev(env, db, [1, 3, 5, 7, 9])
    out = run(env, db.scan(encode_key(0), 10))
    assert [k for k, _ in out] == [encode_key(i) for i in range(10)]
    # values came from the right interface
    vals = dict(out)
    assert vals[encode_key(2)].startswith(b"m-")
    assert vals[encode_key(3)].startswith(b"d-")


def test_same_key_newest_wins_dev_newer(system):
    env, db, _ = system
    put_main(env, db, [5])
    put_dev(env, db, [5])  # later write -> higher seq
    out = dict(run(env, db.scan(encode_key(5), 1)))
    assert out[encode_key(5)].startswith(b"d-")


def test_same_key_newest_wins_main_newer(system):
    env, db, _ = system
    put_dev(env, db, [5])
    put_main(env, db, [5])  # controller removes metadata, main newest
    out = dict(run(env, db.scan(encode_key(5), 1)))
    assert out[encode_key(5)].startswith(b"m-")


def test_dev_tombstone_hides_main_key(system):
    env, db, _ = system
    put_main(env, db, [1, 2, 3])
    def gen():
        db.detector.stall_condition = True
        yield from db.delete(encode_key(2))
        db.detector.stall_condition = False
    run(env, gen())
    out = run(env, db.scan(encode_key(1), 3))
    assert [k for k, _ in out] == [encode_key(1), encode_key(3)]


def test_seek_into_middle(system):
    env, db, _ = system
    put_main(env, db, range(0, 20, 2))
    put_dev(env, db, range(1, 20, 2))
    out = run(env, db.scan(encode_key(7), 5))
    assert [k for k, _ in out] == [encode_key(k) for k in range(7, 12)]


def test_empty_dev_falls_back_to_main_only(system):
    env, db, ssd = system
    put_main(env, db, range(10))
    assert ssd.kv.is_empty
    out = run(env, db.scan(encode_key(0), 10))
    assert len(out) == 10


def test_empty_both(system):
    env, db, _ = system
    assert run(env, db.scan(encode_key(0), 5)) == []


def test_count_limits_output(system):
    env, db, _ = system
    put_main(env, db, range(100))
    out = run(env, db.scan(encode_key(0), 7))
    assert len(out) == 7


def test_scan_past_end(system):
    env, db, _ = system
    put_main(env, db, range(5))
    out = run(env, db.scan(encode_key(3), 100))
    assert [k for k, _ in out] == [encode_key(3), encode_key(4)]


def test_dev_iterator_charges_nvme_commands(system):
    env, db, ssd = system
    put_main(env, db, range(0, 50, 2))
    put_dev(env, db, range(1, 50, 2))
    before = dict(ssd.kv.command_counts)
    run(env, db.scan(encode_key(0), 50))
    after = ssd.kv.command_counts
    assert after.get("iter_open", 0) > before.get("iter_open", 0)
    assert after.get("iter_next", 0) > before.get("iter_next", 0)


def test_main_prefetch_refills_across_buffer_boundary(system):
    env, db, _ = system
    put_main(env, db, range(600))

    def gen():
        it = DualIterator(db.controller, prefetch=64)
        yield from it.seek(encode_key(0))
        got = []
        while True:
            e = yield from it.next()
            if e is None:
                break
            got.append(e[0])
        return got

    keys = run(env, gen())
    assert keys == [encode_key(k) for k in range(600)]


def test_range_query_against_model(system):
    import random
    env, db, _ = system
    rng = random.Random(5)
    model = {}

    def gen():
        for i in range(2000):
            k = rng.randrange(300)
            stall = rng.random() < 0.3
            db.detector.stall_condition = stall
            v = b"%d:%d" % (k, i)
            yield from db.put(encode_key(k), v)
            model[k] = v
        db.detector.stall_condition = False

    run(env, gen())
    expected = [(encode_key(k), model[k]) for k in sorted(model)][:100]
    out = run(env, db.scan(encode_key(0), 100))
    assert out == expected
