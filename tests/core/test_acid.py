"""Tests for KVACCEL's ACID claims (paper Section V-G).

The paper argues the dual-interface design preserves database semantics:

* Atomicity — interface operations are independent; partial rollbacks are
  cleaned up (the rollback either merges a pair or the pair stays in the
  Dev-LSM; nothing half-applied is visible).
* Consistency — metadata tracking routes every read/write correctly,
  through interface transitions.
* Isolation — range queries run on per-interface iterators and are not
  corrupted by concurrent writes.
* Durability — a redirected write is durable in NAND the moment its KV
  PUT completes: crashes and rollbacks never lose it.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_kvaccel  # noqa: E402

from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


@pytest.fixture
def stack():
    env = Environment()
    db, ssd, cpu = small_kvaccel(env, rollback="disabled")
    db.detector.stop()
    yield env, db, ssd
    db.close()


class TestAtomicity:
    def test_rollback_never_exposes_partial_state(self, stack):
        """Reads issued while a rollback is mid-flight must return either
        the Dev-LSM copy or the merged Main-LSM copy — never nothing."""
        env, db, ssd = stack
        db.detector.stall_condition = True

        def load():
            for i in range(400):
                yield from db.put(encode_key(i), b"r-%d" % i)
            db.detector.stall_condition = False
        run(env, load())

        observed = []

        def reader():
            # sample reads while the rollback below progresses
            for _ in range(50):
                v = yield from db.get(encode_key(123))
                observed.append(v)
                yield env.timeout(1e-4)

        rp = env.process(db.rollback_manager.rollback_once())
        env.process(reader())
        env.run(until=rp)
        env.run(until=env.now + 0.01)
        assert all(v == b"r-123" for v in observed if v is not None)
        assert all(v is not None for v in observed)

    def test_interrupted_state_is_recoverable(self, stack):
        """Even if rollback never runs, all data is reachable (nothing is
        'in between' interfaces)."""
        env, db, ssd = stack
        db.detector.stall_condition = True
        run(env, db.put(encode_key(1), b"v1"))
        db.detector.stall_condition = False
        assert run(env, db.get(encode_key(1))) == b"v1"


class TestConsistency:
    def test_interface_transitions_keep_newest(self, stack):
        env, db, ssd = stack
        key = encode_key(9)
        history = []
        for round_ in range(6):
            db.detector.stall_condition = round_ % 2 == 0
            v = b"gen-%d" % round_
            run(env, db.put(key, v))
            history.append(v)
            assert run(env, db.get(key)) == history[-1]
        db.detector.stall_condition = False
        run(env, db.final_rollback())
        run(env, db.wait_for_quiesce())
        assert run(env, db.get(key)) == history[-1]

    def test_metadata_agrees_with_devlsm(self, stack):
        env, db, ssd = stack
        db.detector.stall_condition = True
        for i in range(50):
            run(env, db.put(encode_key(i), b"d"))
        db.detector.stall_condition = False
        for i in range(0, 50, 2):  # half overwritten via Main-LSM
            run(env, db.put(encode_key(i), b"m"))
        snap = db.metadata.keys_snapshot()
        assert snap == {encode_key(i) for i in range(1, 50, 2)}


class TestIsolation:
    def test_scan_not_corrupted_by_concurrent_writes(self, stack):
        """A range query interleaved with writes must return a sorted,
        duplicate-free view where every value was current at some point."""
        env, db, ssd = stack
        valid = {}
        for i in range(200):
            run(env, db.put(encode_key(i), b"v0-%d" % i))
            valid[encode_key(i)] = {b"v0-%d" % i}

        scan_result = []

        def scanner():
            out = yield from db.scan(encode_key(0), 200)
            scan_result.append(out)

        def writer():
            for i in range(0, 200, 3):
                db.detector.stall_condition = i % 2 == 0
                v = b"v1-%d" % i
                yield from db.put(encode_key(i), v)
                valid[encode_key(i)].add(v)
            db.detector.stall_condition = False

        sp = env.process(scanner())
        env.process(writer())
        env.run(until=sp)
        env.run(until=env.now + 0.05)
        out = scan_result[0]
        keys = [k for k, _ in out]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))
        for k, v in out:
            assert v in valid[k], k

    def test_concurrent_scans_dont_interfere(self, stack):
        env, db, ssd = stack
        db.detector.stall_condition = True
        for i in range(100):
            run(env, db.put(encode_key(i), b"x-%d" % i))
        db.detector.stall_condition = False

        results = []

        def scanner(start):
            out = yield from db.scan(encode_key(start), 20)
            results.append((start, out))

        procs = [env.process(scanner(s)) for s in (0, 25, 50)]
        env.run(until=env.all_of(procs))
        for start, out in results:
            assert [k for k, _ in out] == \
                [encode_key(k) for k in range(start, start + 20)]


class TestDurability:
    def test_redirected_writes_survive_metadata_crash(self, stack):
        env, db, ssd = stack
        db.detector.stall_condition = True
        for i in range(100):
            run(env, db.put(encode_key(i), b"durable-%d" % i))
        db.detector.stall_condition = False
        # crash wipes the volatile index; NAND still holds the pairs
        report = run(env, db.recover())
        assert report.entries_recovered == 100
        run(env, db.wait_for_quiesce())
        for i in (0, 50, 99):
            assert run(env, db.get(encode_key(i))) == b"durable-%d" % i

    def test_rollback_then_host_crash_loses_nothing_durable(self, stack):
        """Two-stage commit (V-G): data lands in Dev-LSM NAND first, then
        merges to Main-LSM.  After rollback + WAL sync + host crash, every
        pair must still be readable."""
        env, db, ssd = stack
        db.detector.stall_condition = True
        for i in range(200):
            run(env, db.put(encode_key(i), b"p-%d" % i))
        db.detector.stall_condition = False
        run(env, db.final_rollback())
        run(env, db.main.wal.sync())
        run(env, db.main.crash_and_recover())
        run(env, db.wait_for_quiesce())
        for i in (0, 100, 199):
            assert run(env, db.get(encode_key(i))) == b"p-%d" % i

    def test_unrolled_devlsm_survives_host_crash(self, stack):
        """Pairs still sitting in the Dev-LSM are independent of the host
        LSM's volatile state: a host crash + recovery must not drop them."""
        env, db, ssd = stack
        db.detector.stall_condition = True
        for i in range(150):
            run(env, db.put(encode_key(i), b"q-%d" % i))
        db.detector.stall_condition = False
        assert not ssd.kv.is_empty
        run(env, db.main.crash_and_recover())
        # metadata (volatile) also gone in a real crash: recover it too
        run(env, db.recover())
        run(env, db.wait_for_quiesce())
        for i in (0, 75, 149):
            assert run(env, db.get(encode_key(i))) == b"q-%d" % i
