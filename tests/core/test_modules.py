"""Unit tests for detector, metadata manager, controller routing, rollback."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_db, small_kvaccel, small_options  # noqa: E402

from repro.core import (  # noqa: E402
    DetectorConfig,
    MetadataCosts,
    MetadataManager,
    RollbackConfig,
    WriteStallDetector,
)
from repro.device import CpuModel  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


class TestDetector:
    def test_no_pressure_no_stall(self):
        env = Environment()
        db, _, _ = small_db(env)
        det = WriteStallDetector(env, db, DetectorConfig(period=0.01))
        env.run(until=0.1)
        assert det.checks >= 9
        assert det.stall_condition is False
        det.stop()

    def test_detects_l0_pressure(self):
        env = Environment()
        db, _, _ = small_db(env)
        det = WriteStallDetector(env, db, DetectorConfig(period=0.01))
        # Forge L0 pressure directly on the version set.  Files are created
        # in the fs and pinned being_compacted so the background scheduler
        # neither crashes on missing files nor clears the pressure.
        from repro.lsm import FileMetadata, SSTable, VersionEdit
        from repro.types import make_entry
        added = []
        for i in range(db.options.level0_slowdown_writes_trigger):
            t = SSTable(i + 1, [make_entry(encode_key(i * 10), i + 1, b"v")],
                        block_size=4096)
            meta = FileMetadata(number=i + 1, level=0, table=t,
                                being_compacted=True)
            added.append(meta)

        def forge():
            for m in added:
                f = db.fs.create(db._sst_name(m.number))
                yield from db.fs.append(f, m.table.file_bytes)

        run(env, forge())
        db.versions.apply(VersionEdit(added=added))
        env.run(until=0.05)
        assert det.stall_condition is True
        assert det.evaluate() is True
        det.stop()

    def test_charges_cpu_per_check(self):
        env = Environment()
        db, _, cpu = small_db(env)
        det = WriteStallDetector(env, db,
                                 DetectorConfig(period=0.01,
                                                check_cpu_cost=1.37e-6))
        env.run(until=0.1)
        assert cpu.busy_by_tag.get("detector", 0) == pytest.approx(
            det.checks * 1.37e-6)
        det.stop()

    def test_transition_counting(self):
        env = Environment()
        db, _, _ = small_db(env)
        det = WriteStallDetector(env, db, DetectorConfig(period=0.01))

        def pressurize():
            yield env.timeout(0.03)
            # fake a backed-up flush: one immutable + a half-full active
            from repro.types import make_entry
            db.mem.add(make_entry(encode_key(1), 1,
                                  b"x" * db.options.write_buffer_size))
            db.imm.append((db.mem, None))
            yield env.timeout(0.03)
            db.imm.clear()
            yield env.timeout(0.03)

        env.process(pressurize())
        env.run(until=0.1)
        assert det.transitions >= 2
        assert det.stall_condition_time > 0
        det.stop()


class TestMetadata:
    def test_basic_membership(self):
        env = Environment()
        cpu = CpuModel(env, cores=1)
        md = MetadataManager(cpu)
        md.insert(b"a")
        assert md.contains(b"a")
        assert not md.contains(b"b")
        md.remove(b"a")
        assert not md.contains(b"a")
        assert md.inserts == 1 and md.checks == 3 and md.deletes == 1

    def test_remove_absent_is_safe(self):
        env = Environment()
        md = MetadataManager(CpuModel(env, cores=1))
        md.remove(b"ghost")
        assert len(md) == 0

    def test_cpu_charges_match_table_vi(self):
        env = Environment()
        cpu = CpuModel(env, cores=1)
        costs = MetadataCosts(insert=0.45e-6, check=0.20e-6, delete=0.28e-6)
        md = MetadataManager(cpu, costs)
        md.insert(b"k")
        md.contains(b"k")
        md.remove(b"k")
        assert cpu.busy_by_tag["metadata"] == pytest.approx(0.93e-6)

    def test_clear_and_drop(self):
        env = Environment()
        md = MetadataManager(CpuModel(env, cores=1))
        for i in range(10):
            md.insert(encode_key(i))
        snap = md.keys_snapshot()
        assert len(snap) == 10
        md.drop()
        assert md.is_empty
        # snapshot is a copy, unaffected
        assert len(snap) == 10


class TestControllerRouting:
    def test_forced_redirection_via_detector_latch(self):
        env = Environment()
        db, ssd, _ = small_kvaccel(env, rollback="disabled")
        db.detector.stall_condition = True  # force the latch
        run(env, db.put(encode_key(1), b"redirected"))
        assert db.controller.redirected_writes == 1
        assert db.metadata.contains(encode_key(1))
        assert run(env, db.get(encode_key(1))) == b"redirected"
        db.close()

    def test_metadata_cleaned_when_main_overwrites(self):
        env = Environment()
        db, ssd, _ = small_kvaccel(env, rollback="disabled")
        db.detector.stall_condition = True
        run(env, db.put(encode_key(2), b"dev-copy"))
        db.detector.stall_condition = False
        run(env, db.put(encode_key(2), b"main-copy"))  # step 3-1
        assert not db.metadata.contains(encode_key(2))
        assert run(env, db.get(encode_key(2))) == b"main-copy"
        db.close()

    def test_no_redirection_during_rollback(self):
        env = Environment()
        db, ssd, _ = small_kvaccel(env, rollback="disabled")
        db.detector.stall_condition = True
        db.controller.rollback_in_progress = True
        run(env, db.put(encode_key(3), b"to-main"))
        assert db.controller.redirected_writes == 0
        assert db.controller.normal_writes == 1
        db.close()

    def test_redirected_delete_tombstone(self):
        env = Environment()
        db, ssd, _ = small_kvaccel(env, rollback="disabled")
        run(env, db.put(encode_key(4), b"live"))
        db.detector.stall_condition = True
        run(env, db.delete(encode_key(4)))
        assert run(env, db.get(encode_key(4))) is None
        db.close()


class TestRollbackConfig:
    def test_invalid_scheme(self):
        with pytest.raises(ValueError):
            RollbackConfig(scheme="sometimes")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RollbackConfig(period=0)
        with pytest.raises(ValueError):
            RollbackConfig(merge_batch=0)

    def test_rollback_preserves_seq_order(self):
        env = Environment()
        db, ssd, _ = small_kvaccel(env, rollback="disabled")
        db.detector.stall_condition = True
        run(env, db.put(encode_key(9), b"dev-old"))
        db.detector.stall_condition = False
        run(env, db.put(encode_key(9), b"main-new"))  # removes metadata entry
        # force rollback: the stale dev copy must NOT shadow main's copy
        run(env, db.final_rollback())
        run(env, db.wait_for_quiesce())
        assert run(env, db.get(encode_key(9))) == b"main-new"
        db.close()

    def test_rollback_merges_tombstones(self):
        env = Environment()
        db, ssd, _ = small_kvaccel(env, rollback="disabled")
        run(env, db.put(encode_key(11), b"doomed"))
        db.detector.stall_condition = True
        run(env, db.delete(encode_key(11)))
        db.detector.stall_condition = False
        run(env, db.final_rollback())
        assert ssd.kv.is_empty
        assert run(env, db.get(encode_key(11))) is None
        db.close()
