"""Integration tests for the assembled KVACCEL stack."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_kvaccel, small_options  # noqa: E402

from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


def fill(env, db, n, vlen=64, start=0, prefix=b"v"):
    def gen():
        for i in range(start, start + n):
            yield from db.put(encode_key(i), prefix + b"-%d" % i + b"x" * vlen)
    run(env, gen())


def test_put_get_roundtrip_no_stall():
    env = Environment()
    db, ssd, _ = small_kvaccel(env)
    fill(env, db, 20)
    assert run(env, db.get(encode_key(7))) is not None
    assert db.controller.normal_writes == 20
    assert db.controller.redirected_writes == 0
    db.close()


def test_redirection_happens_under_pressure():
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="disabled")
    fill(env, db, 4000)
    assert db.controller.redirected_writes > 0, \
        "small memtable + slow flush must trigger redirection"
    db.close()


def test_redirected_keys_readable_from_dev():
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="disabled")
    fill(env, db, 4000)
    # every key readable regardless of which interface holds it
    for k in (0, 1000, 2500, 3999):
        got = run(env, db.get(encode_key(k)))
        assert got is not None, k
    assert len(db.metadata) > 0
    assert db.controller.dev_reads >= 0
    db.close()


def test_all_keys_correct_value_after_mixed_routing():
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="disabled")
    fill(env, db, 3000)
    fill(env, db, 3000, prefix=b"w")  # overwrite everything
    for k in (0, 1234, 2999):
        got = run(env, db.get(encode_key(k)))
        assert got.startswith(b"w-"), k
    db.close()


def test_eager_rollback_drains_devlsm():
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="eager")
    fill(env, db, 4000)
    run(env, db.wait_for_quiesce())
    # let the rollback manager observe the calm and finish
    env.run(until=env.now + 1.0)
    assert db.rollback_manager.rollback_count > 0
    assert ssd.kv.is_empty
    assert len(db.metadata) == 0
    # all data must now be served by Main-LSM with correct values
    for k in (0, 2000, 3999):
        assert run(env, db.get(encode_key(k))) is not None, k
    db.close()


def test_lazy_rollback_waits_for_quiet():
    env = Environment()
    from repro.core import RollbackConfig
    db, ssd, _ = small_kvaccel(
        env, rollback=RollbackConfig(scheme="lazy", period=0.002,
                                     quiet_window=0.2))
    fill(env, db, 4000)
    redirected = db.controller.redirected_writes
    if redirected == 0:
        pytest.skip("no redirection in this configuration")
    # immediately after the workload there has been no quiet window yet
    rollbacks_immediately = db.rollback_manager.rollback_count
    env.run(until=env.now + 1.0)  # quiet period passes
    assert db.rollback_manager.rollback_count >= rollbacks_immediately
    assert ssd.kv.is_empty
    db.close()


def test_disabled_rollback_keeps_devlsm_until_final():
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="disabled")
    fill(env, db, 4000)
    env.run(until=env.now + 0.5)
    assert db.rollback_manager.rollback_count == 0
    if not ssd.kv.is_empty:
        run(env, db.final_rollback())
        assert ssd.kv.is_empty
        assert db.rollback_manager.rollback_count == 1
    db.close()


def test_delete_routed_and_effective():
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="eager")
    fill(env, db, 100)
    run(env, db.delete(encode_key(5)))
    assert run(env, db.get(encode_key(5))) is None
    assert run(env, db.get(encode_key(6))) is not None
    db.close()


def test_scan_merges_both_interfaces():
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="disabled")
    fill(env, db, 3000)
    out = run(env, db.scan(encode_key(100), 50))
    keys = [k for k, _ in out]
    assert keys == [encode_key(k) for k in range(100, 150)]
    db.close()


def test_scan_sees_redirected_overwrites():
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="disabled")
    fill(env, db, 3000)
    if db.controller.redirected_writes == 0:
        pytest.skip("no redirection")
    # redirected keys must surface their latest value in scans
    out = dict(run(env, db.scan(encode_key(0), 200)))
    sample = list(db.metadata.keys_snapshot())[:5]
    for key in sample:
        if key in out:
            assert out[key] is not None
    db.close()


def test_recovery_restores_consistency():
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="disabled")
    fill(env, db, 4000)
    if ssd.kv.is_empty:
        pytest.skip("nothing redirected")
    n_dev = ssd.kv.entry_count
    report = run(env, db.recover())
    assert report.entries_recovered > 0
    assert report.elapsed > 0
    assert ssd.kv.is_empty
    assert len(db.metadata) == 0
    for k in (0, 2000, 3999):
        assert run(env, db.get(encode_key(k))) is not None
    db.close()


def test_recovery_does_not_resurrect_stale_values():
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="disabled")
    fill(env, db, 3000)                 # some keys redirected
    fill(env, db, 3000, prefix=b"w")    # overwrites, some through main
    run(env, db.recover())
    run(env, db.wait_for_quiesce())
    for k in (0, 1500, 2999):
        got = run(env, db.get(encode_key(k)))
        assert got is not None and got.startswith(b"w-"), k
    db.close()


def test_kvaccel_vs_reference_model_random_ops():
    import random
    env = Environment()
    db, ssd, _ = small_kvaccel(env, rollback="eager")
    rng = random.Random(99)
    model = {}

    def gen():
        for i in range(3000):
            k = rng.randrange(400)
            op = rng.random()
            if op < 0.8:
                v = b"val-%d-%d" % (k, i) + b"x" * 40
                yield from db.put(encode_key(k), v)
                model[k] = v
            elif op < 0.9:
                yield from db.delete(encode_key(k))
                model.pop(k, None)
            else:
                got = yield from db.get(encode_key(k))
                assert got == model.get(k), f"key {k} at op {i}"

    run(env, gen())
    for k in range(400):
        assert run(env, db.get(encode_key(k))) == model.get(k), k
    db.close()


def test_snapshot_shape():
    env = Environment()
    db, ssd, _ = small_kvaccel(env)
    fill(env, db, 100)
    snap = db.snapshot()
    for key in ("redirected_writes", "normal_writes", "devlsm_entries",
                "metadata_keys", "rollbacks", "detector_stall"):
        assert key in snap
    db.close()


def test_slowdown_disabled_by_default():
    env = Environment()
    db, _, _ = small_kvaccel(env, options=small_options(slowdown_enabled=True))
    assert db.main.options.slowdown_enabled is False
    db.close()
