"""Regression tests: detector/rollback daemons terminate cleanly on close.

Before the fix, WriteStallDetector.stop() only set a flag: the polling
process stayed parked on its period timeout, so a closed system kept one
live timer (and kept charging check CPU against a closed DB) until the
caller's run horizon — and a db closed *without* stop() polled forever.
"""

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_db, small_kvaccel  # noqa: E402

from repro.core import DetectorConfig, WriteStallDetector  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402

VALUE = b"v" * 200


def test_stop_interrupts_the_poll_wait_immediately():
    env = Environment()
    db, dev, cpu = small_db(env)
    det = WriteStallDetector(env, db, DetectorConfig(period=0.5))
    env.run(until=0.6)             # let at least one poll happen
    assert det.checks >= 1
    det.stop()
    env.run()                      # must drain without reaching the next poll
    assert math.isinf(env.peek())
    assert not det.process.is_alive
    db.close()
    env.run()


def test_stop_before_first_poll_is_safe():
    env = Environment()
    db, dev, cpu = small_db(env)
    det = WriteStallDetector(env, db, DetectorConfig(period=0.5))
    det.stop()                     # process has not even started yet
    env.run()
    assert det.checks == 0
    assert not det.process.is_alive
    det.stop()                     # idempotent on a dead process
    db.close()
    env.run()


def test_detector_terminates_when_db_closed_without_stop():
    env = Environment()
    db, dev, cpu = small_db(env)
    det = WriteStallDetector(env, db, DetectorConfig(period=0.01))

    def driver():
        for i in range(20):
            yield from db.put(encode_key(i), VALUE)

    run(env, driver())
    db.close()
    env.run()                      # detector notices db.closed and exits
    assert math.isinf(env.peek())
    assert not det.process.is_alive
    checks_at_close = det.checks
    env.run(until=env.now + 10.0)
    assert det.checks == checks_at_close


def test_kvaccel_close_mid_simulation_drains_event_queue():
    env = Environment()
    db, ssd, cpu = small_kvaccel(env, detector_period=0.01)

    def driver():
        for i in range(30):
            yield from db.put(encode_key(i), VALUE)
        db.close()                 # stop() called from inside a process

    run(env, driver())
    env.run()
    assert math.isinf(env.peek())
    assert not db.detector.process.is_alive
    assert not db.rollback_manager.process.is_alive


def test_stall_condition_latch_survives_stop():
    env = Environment()
    db, ssd, cpu = small_kvaccel(env)
    db.detector.stop()
    db.rollback_manager.stop()
    db.detector.stall_condition = True     # manual control for tests
    env.run()
    assert db.detector.stall_condition
    db.close()
