"""Tests for the repro.perf harness (microbenches, docs, CLI).

Wall-clock numbers are host-dependent, so these tests check structure and
arithmetic — positive throughput, correct speedup math, schema round-trip
— never absolute speeds.  The one environmental fact they do pin is the
event *count* of each microbenchmark, which is deterministic.
"""

import json

import pytest

from repro.perf import (
    HEADLINE_BENCH,
    KERNEL_BENCHES,
    BenchResult,
    build_perf_doc,
    compare_perf,
    default_baseline_path,
    load_perf_doc,
    run_kernel_benches,
)
from repro.perf.__main__ import main as perf_main


class TestMicrobenches:
    def test_every_bench_runs_and_counts_events(self):
        for name, fn in KERNEL_BENCHES.items():
            r = fn()
            assert r.name == name
            assert r.events > 0
            assert r.wall_s > 0
            assert r.events_per_sec > 0

    def test_event_counts_deterministic(self):
        a = KERNEL_BENCHES[HEADLINE_BENCH]()
        b = KERNEL_BENCHES[HEADLINE_BENCH]()
        assert a.events == b.events

    def test_run_kernel_benches_selection_and_best_of(self):
        out = run_kernel_benches([HEADLINE_BENCH], repeats=2)
        assert list(out) == [HEADLINE_BENCH]
        assert isinstance(out[HEADLINE_BENCH], BenchResult)

    def test_unknown_bench_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_kernel_benches(["not_a_bench"], repeats=1)


class TestDocs:
    def test_build_and_load_round_trip(self, tmp_path):
        benches = {"x": BenchResult("x", 1000, 0.5)}
        doc = build_perf_doc(benches)
        p = tmp_path / "perf.json"
        p.write_text(json.dumps(doc))
        loaded = load_perf_doc(p)
        assert loaded["benches"]["x"]["events_per_sec"] == 2000.0
        assert loaded["schema"] == "repro-perf-baseline"

    def test_load_rejects_non_perf_doc(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError):
            load_perf_doc(p)

    def test_compare_perf_speedup_math(self):
        baseline = {"benches": {"x": {"events_per_sec": 500.0},
                                "y": {"events_per_sec": 0.0}}}
        now = {"x": BenchResult("x", 1500, 1.0),    # 1500 ev/s -> 3.0x
               "y": BenchResult("y", 100, 1.0),     # zero baseline: skipped
               "z": BenchResult("z", 100, 1.0)}     # not in baseline: skipped
        speedups = compare_perf(baseline, now)
        assert speedups == {"x": pytest.approx(3.0)}

    def test_pinned_baseline_is_loadable(self):
        # The committed pre-fast-path numbers the CLI compares against.
        path = default_baseline_path()
        assert path.exists()
        doc = load_perf_doc(path)
        assert HEADLINE_BENCH in doc["benches"]
        assert doc["benches"][HEADLINE_BENCH]["events_per_sec"] > 0


class TestCli:
    def test_single_bench_smoke(self, capsys):
        rc = perf_main(["--bench", HEADLINE_BENCH, "--repeats", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert HEADLINE_BENCH in out
        assert "events/sec" in out

    def test_json_artifact(self, tmp_path, capsys):
        target = tmp_path / "perf.json"
        rc = perf_main(["--bench", HEADLINE_BENCH, "--repeats", "1",
                        "--json", str(target)])
        assert rc == 0
        doc = load_perf_doc(target)
        assert HEADLINE_BENCH in doc["benches"]

    def test_unknown_bench_exits_nonzero(self, capsys):
        rc = perf_main(["--bench", "nope", "--repeats", "1"])
        assert rc == 2

    def test_missing_explicit_baseline_exits_nonzero(self, tmp_path):
        rc = perf_main(["--bench", HEADLINE_BENCH, "--repeats", "1",
                        "--baseline", str(tmp_path / "absent.json")])
        assert rc == 2
