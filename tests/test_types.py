"""Tests for the shared KV primitives (repro.types)."""

import pytest

from repro.types import (
    KIND_DELETE,
    KIND_PUT,
    ValueRef,
    encode_key,
    entry_size,
    make_entry,
    materialize,
    value_size,
)


class TestValueRef:
    def test_size_preserved(self):
        assert value_size(ValueRef(seed=1, size=4096)) == 4096
        assert value_size(b"abc") == 3
        assert value_size(None) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ValueRef(seed=1, size=-1)

    def test_materialize_deterministic(self):
        ref = ValueRef(seed=42, size=100)
        a, b = materialize(ref), materialize(ref)
        assert a == b
        assert len(a) == 100

    def test_materialize_distinct_seeds(self):
        assert materialize(ValueRef(1, 64)) != materialize(ValueRef(2, 64))

    def test_materialize_passthrough(self):
        assert materialize(b"xyz") == b"xyz"
        assert materialize(None) == b""

    def test_materialize_zero_size(self):
        assert materialize(ValueRef(9, 0)) == b""


class TestEncodeKey:
    def test_order_preserving(self):
        keys = [encode_key(i) for i in range(1000)]
        assert keys == sorted(keys)

    def test_width(self):
        assert len(encode_key(0)) == 4
        assert len(encode_key(5, width=8)) == 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_key(-1)

    def test_overflow_raises(self):
        with pytest.raises(OverflowError):
            encode_key(2**32, width=4)


class TestEntries:
    def test_make_entry_defaults(self):
        e = make_entry(b"k", 5, b"v")
        assert e == (b"k", 5, KIND_PUT, b"v")
        t = make_entry(b"k", 6, None)
        assert t[2] == KIND_DELETE

    def test_explicit_kind(self):
        e = make_entry(b"k", 5, None, kind=KIND_DELETE)
        assert e[2] == KIND_DELETE

    def test_entry_size_components(self):
        e = make_entry(b"abcd", 1, b"x" * 10)
        assert entry_size(e) == 4 + 10 + 8
        t = make_entry(b"abcd", 1, None)
        assert entry_size(t) == 4 + 8

    def test_entry_size_with_ref(self):
        e = make_entry(b"abcd", 1, ValueRef(0, 4096))
        assert entry_size(e) == 4 + 4096 + 8
