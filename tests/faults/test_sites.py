"""Arm-time site validation and the honesty of the site catalogue."""

import re
from pathlib import Path

import pytest

from repro.faults.plan import AlwaysPlan
from repro.faults.registry import FAIL, FaultAction, FaultRegistry
from repro.faults.sites import (
    DYNAMIC_SUFFIXES,
    KNOWN_SITES,
    UnknownSiteError,
    matching_sites,
    validate_pattern,
)

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

# Site names produced by f-strings rather than literals, per family.
DYNAMIC_FAMILIES = {
    "nand.read", "nand.program", "nand.erase",        # f"nand.{op}"
    "pcie.transfer",                                  # f"{self.name}.transfer"
    "resil.healthy.enter", "resil.recovering.enter",  # f"resil.{state}.enter"
    "resil.degraded.enter",
}


def _source_literal_sites() -> set:
    # Direct probes plus KvDevice's _submit helper, which forwards the
    # site name to fault_point.
    pat = re.compile(
        r'(?:(?:fault_point|touch)\(\s*[\w.]+\s*,|_submit\(\s*)\s*"([^"{]+)"'
    )
    sites = set()
    for path in SRC.rglob("*.py"):
        for m in pat.finditer(path.read_text(encoding="utf-8")):
            sites.add(m.group(1))
    return sites


# ------------------------------------------------------------ validation
def test_exact_known_site_accepted():
    validate_pattern("kv.put.submit")
    validate_pattern("rollback.complete")


def test_dynamic_suffix_accepted():
    validate_pattern("some-other-link.transfer")


def test_typo_rejected():
    with pytest.raises(UnknownSiteError):
        validate_pattern("kv.putbatch.submit")     # the original bug
    with pytest.raises(UnknownSiteError):
        validate_pattern("wal.appendx")


def test_glob_must_match_some_site():
    validate_pattern("kv.*.submit")
    validate_pattern("rollback.*")
    with pytest.raises(UnknownSiteError):
        validate_pattern("kvx.*")
    with pytest.raises(UnknownSiteError):
        validate_pattern("mylink.*")     # dynamic family globs rejected


def test_matching_sites_lists_expansion():
    got = matching_sites("kv.*.submit")
    assert "kv.put.submit" in got
    assert "kv.put_batch.submit" in got
    assert got == sorted(got)


# ------------------------------------------------------------- arm hook
def test_arm_rejects_unknown_site():
    reg = FaultRegistry(seed=1)
    with pytest.raises(UnknownSiteError):
        reg.arm("kv.putbatch.submit", AlwaysPlan(), FaultAction(FAIL))


def test_arm_escape_hatch():
    reg = FaultRegistry(seed=1)
    reg.arm("totally.synthetic.site", AlwaysPlan(), FaultAction(FAIL),
            validate=False)


# ---------------------------------------------------- catalogue honesty
def test_every_source_literal_is_catalogued():
    missing = _source_literal_sites() - KNOWN_SITES
    assert not missing, f"probe sites missing from KNOWN_SITES: {missing}"


def test_no_stale_catalogue_entries():
    stale = KNOWN_SITES - _source_literal_sites() - DYNAMIC_FAMILIES
    assert not stale, f"KNOWN_SITES entries with no probe in src: {stale}"


def test_dynamic_suffixes_documented():
    assert ".transfer" in DYNAMIC_SUFFIXES
