"""The crash-point sweep: ISSUE 1's acceptance criteria.

* the sweep over the harness workload reaches >= 30 distinct injection
  sites and the acked-write-durability / no-phantom-write invariants hold
  at every one;
* a deliberately broken recovery (skipping the Dev-LSM drain, or skipping
  the Dev-LSM reset) is caught by the same invariants.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import fault_seed  # noqa: E402

from repro.faults import (  # noqa: E402
    KvaccelFaultHarness,
    broken_recovery_skip_drain,
    broken_recovery_skip_reset,
    sweep_crash_points,
)
from repro.faults.__main__ import main as faults_main  # noqa: E402


def test_sweep_covers_sites_and_invariants_hold_everywhere():
    harness = KvaccelFaultHarness(seed=fault_seed())
    report = sweep_crash_points(harness)
    assert report.sites_traced >= 30, report.summary_lines()
    assert len(report.crashed) >= 30
    assert report.failed == [], "\n".join(
        r.describe() for r in report.failed)
    # Spot-check the layers are all represented in the sweep.
    sites = {r.site for r in report.reports}
    for prefix in ("nand.", "pcie.", "fs.", "wal.", "db.", "ctl.", "kv.",
                   "devlsm.", "rollback."):
        assert any(s.startswith(prefix) for s in sites), prefix


def test_sweep_budget_bounds_runs_and_reports_skips():
    harness = KvaccelFaultHarness(seed=fault_seed())
    report = sweep_crash_points(harness, budget=5)
    assert report.crash_runs == 5
    assert report.skipped_for_budget == report.sites_traced - 5
    assert report.failed == []


def test_trace_is_deterministic_for_a_seed():
    h = KvaccelFaultHarness(seed=fault_seed())
    t1 = h.trace()
    t2 = h.trace()
    assert [(x.site, x.occurrence, x.time) for x in t1] == \
           [(x.site, x.occurrence, x.time) for x in t2]


def test_broken_recovery_skipping_devlsm_drain_is_caught():
    """Recovery that resets the Dev-LSM without merging loses every acked
    redirected write still parked there — the oracle must flag it."""
    harness = KvaccelFaultHarness(seed=fault_seed(),
                                  recovery=broken_recovery_skip_drain)
    report = harness.crash_at("kv.put_batch.complete", occurrence=10)
    assert report.crashed
    assert any(v.kind == "durability" for v in report.violations), \
        report.describe()


def test_broken_recovery_skipping_devlsm_reset_is_caught():
    """Recovery that merges but forgets the reset leaves the two LSMs'
    metadata in disagreement — also flagged."""
    harness = KvaccelFaultHarness(seed=fault_seed(),
                                  recovery=broken_recovery_skip_reset)
    report = harness.crash_at("kv.put_batch.complete", occurrence=10)
    assert report.crashed
    assert any(v.kind == "metadata-disagreement"
               for v in report.violations), report.describe()


def test_correct_recovery_at_same_crash_point_passes():
    harness = KvaccelFaultHarness(seed=fault_seed())
    report = harness.crash_at("kv.put_batch.complete", occurrence=10)
    assert report.crashed
    assert report.ok, report.describe()
    assert report.recovery is not None
    assert report.recovery.entries_recovered > 0


def test_cli_sweep_with_budget_and_summary(tmp_path, capsys):
    summary = tmp_path / "sweep.md"
    rc = faults_main(["--faults-budget", "4", "--summary", str(summary)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "crash-point sweep" in out
    text = summary.read_text()
    assert "Crash-point sweep" in text
    assert "| site |" in text


def test_cli_list_sites(capsys):
    rc = faults_main(["--list-sites"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "distinct sites" in out
    assert "wal.append" in out
