"""Unit tests for fault plans and the injection registry."""

import random

import pytest

from repro.faults import (
    FAIL,
    AlwaysPlan,
    AtTimePlan,
    DEFAULT_SEED,
    FaultAction,
    FaultRegistry,
    InjectedFault,
    NeverPlan,
    NthOccurrencePlan,
    ProbabilisticPlan,
    ScriptedPlan,
    fault_point,
    touch,
)
from repro.sim import Environment


def test_never_and_always():
    never, always = NeverPlan(), AlwaysPlan()
    for occ in (1, 2, 100):
        assert not never.should_fire(occ, 0.0)
        assert always.should_fire(occ, 0.0)


def test_nth_occurrence():
    plan = NthOccurrencePlan(3)
    assert [plan.should_fire(i, 0.0) for i in (1, 2, 3, 4, 6)] == [
        False, False, True, False, False]
    rep = NthOccurrencePlan(3, repeat=True)
    assert [rep.should_fire(i, 0.0) for i in (1, 2, 3, 4, 6)] == [
        False, False, True, False, True]
    with pytest.raises(ValueError):
        NthOccurrencePlan(0)


def test_probabilistic_is_reproducible_from_seed():
    a = ProbabilisticPlan(0.3, seed=42)
    b = ProbabilisticPlan(0.3, seed=42)
    seq_a = [a.should_fire(i, 0.0) for i in range(1, 200)]
    seq_b = [b.should_fire(i, 0.0) for i in range(1, 200)]
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)
    with pytest.raises(ValueError):
        ProbabilisticPlan(1.5)


def test_probabilistic_shares_registry_rng():
    reg = FaultRegistry(seed=7)
    plan = ProbabilisticPlan(0.5, rng=reg.rng)
    ref = ProbabilisticPlan(0.5, rng=random.Random(7))
    assert ([plan.should_fire(i, 0.0) for i in range(1, 50)]
            == [ref.should_fire(i, 0.0) for i in range(1, 50)])


def test_at_time_fires_once_at_or_after_t():
    plan = AtTimePlan(1.0)
    assert not plan.should_fire(1, 0.5)
    assert plan.should_fire(2, 1.5)
    assert not plan.should_fire(3, 2.0)   # one-shot


def test_scripted_plan_consumes_times_in_order():
    plan = ScriptedPlan([0.5, 1.2])
    assert not plan.should_fire(1, 0.1)
    assert plan.should_fire(2, 0.6)       # consumes 0.5
    assert not plan.should_fire(3, 0.7)
    assert plan.should_fire(4, 1.3)       # consumes 1.2
    assert not plan.should_fire(5, 9.9)


def test_registry_counts_and_traces_hits():
    env = Environment()
    reg = FaultRegistry().install(env)
    assert env.faults is reg
    assert reg.seed == DEFAULT_SEED
    reg.record_trace = True
    touch(env, "a.site")
    touch(env, "a.site")
    touch(env, "b.site")
    assert reg.hits == {"a.site": 2, "b.site": 1}
    assert [(h.site, h.occurrence) for h in reg.trace] == [
        ("a.site", 1), ("a.site", 2), ("b.site", 1)]
    assert reg.distinct_sites == ["a.site", "b.site"]
    assert reg.total_hits == 3


def test_registry_glob_arming_and_fail():
    env = Environment()
    reg = FaultRegistry().install(env)
    reg.arm("kv.*", NthOccurrencePlan(2), FaultAction(FAIL))
    touch(env, "kv.put.submit")           # occurrence 1: no fire
    touch(env, "nand.program")            # different site family
    with pytest.raises(InjectedFault) as exc:
        touch(env, "kv.put.submit")       # occurrence 2: fires
    assert exc.value.site == "kv.put.submit"
    assert exc.value.occurrence == 2
    assert reg.injected == [("kv.put.submit", 2, FAIL, 0.0)]
    reg.clear_arms()
    touch(env, "kv.put.submit")           # disarmed: no raise


def test_fault_point_is_noop_without_registry():
    env = Environment()

    def probe():
        action = yield from fault_point(env, "any.site")
        assert action is None
        yield env.timeout(0)

    env.run(until=env.process(probe()))


def test_fault_point_delay_stretches_op():
    env = Environment()
    reg = FaultRegistry().install(env)
    reg.arm("slow.site", AlwaysPlan(), FaultAction(kind="delay", delay=0.25),
            validate=False)

    def probe():
        action = yield from fault_point(env, "slow.site")
        assert action is None             # DELAY is absorbed by the probe

    env.run(until=env.process(probe()))
    assert env.now == pytest.approx(0.25)


def test_crash_action_latches_and_fires_event():
    env = Environment()
    reg = FaultRegistry().install(env)
    reg.arm("x", AlwaysPlan(), FaultAction(kind="crash"), validate=False)
    ev = reg.new_crash_event(env)
    assert touch(env, "x") is None        # crash returns None to the site
    assert reg.crashed_at is not None
    assert reg.crashed_at.site == "x"
    assert ev.triggered


def test_action_validation():
    with pytest.raises(ValueError):
        FaultAction(kind="explode")
    with pytest.raises(ValueError):
        FaultAction(kind="delay", delay=-1)
