"""Crash reports carry a ring-buffered trace tail when requested."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import fault_seed  # noqa: E402

from repro.faults import KvaccelFaultHarness  # noqa: E402
from repro.faults.__main__ import main as faults_main  # noqa: E402


def test_crash_report_captures_trace_tail():
    tail_len = 25
    harness = KvaccelFaultHarness(seed=fault_seed(), trace_tail=tail_len)
    report = harness.crash_at("devlsm.flush.start")
    assert report.crashed
    assert report.ok, report.describe()
    tail = report.trace_tail
    assert 0 < len(tail) <= tail_len
    # oldest-first, each record a plain dict with a timestamp
    times = [r.get("t", r.get("t0")) for r in tail]
    assert times == sorted(times)
    assert all(r["kind"] in ("span", "instant", "counter") for r in tail)
    # the tail ends at the crash: its last records are from the redirected
    # write that was in flight (kv / devlsm / pcie spans)
    cats = {r.get("cat") for r in tail if r["kind"] == "span"}
    assert cats & {"kv", "devlsm", "pcie", "nand"}
    # the abandoned in-flight op shows up as open (t1=None) spans
    assert any(r["t1"] is None for r in tail if r["kind"] == "span")


def test_trace_tail_off_by_default():
    harness = KvaccelFaultHarness(seed=fault_seed())
    report = harness.crash_at("wal.append", occurrence=3)
    assert report.crashed
    assert report.trace_tail == []


def test_faults_cli_accepts_trace_tail(capsys):
    rc = faults_main(["--faults-budget", "2", "--trace-tail", "10"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "crash runs: 2" in out
