"""Injection behaviour through the live stack: FAIL, DELAY, DROP, DUPLICATE."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import make_faulty_system, run  # noqa: E402

from repro.faults import (  # noqa: E402
    DROP,
    DUPLICATE,
    AlwaysPlan,
    DifferentialOracle,
    FaultAction,
    InjectedFault,
    NthOccurrencePlan,
)
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402

VALUE = b"value-" * 30


def _quiet(db):
    """Manual stall control: the polling daemons would overwrite it."""
    db.detector.stop()
    db.rollback_manager.stop()


def test_injected_fail_surfaces_to_the_caller():
    env = Environment()
    db, ssd, cpu, reg = make_faulty_system(env)
    _quiet(db)
    db.detector.stall_condition = True
    reg.arm("kv.put_batch.submit", NthOccurrencePlan(1), FaultAction())

    def driver():
        yield from db.put(encode_key(1), VALUE)

    with pytest.raises(InjectedFault) as exc:
        run(env, driver())
    assert exc.value.site == "kv.put_batch.submit"
    db.close()


def test_injected_nand_failure_surfaces_through_the_write_path():
    env = Environment()
    db, ssd, cpu, reg = make_faulty_system(env)
    _quiet(db)
    reg.arm("nand.program", NthOccurrencePlan(1), FaultAction())

    def driver():
        # Enough writes to fill a WAL commit group and hit the device.
        for i in range(40):
            yield from db.put(encode_key(i), VALUE)

    with pytest.raises(InjectedFault):
        run(env, driver())
    db.close()


def test_delay_fault_stretches_latency_but_not_results():
    def drive(arm_delay):
        env = Environment()
        db, ssd, cpu, reg = make_faulty_system(env)
        _quiet(db)
        if arm_delay:
            reg.arm("db.write.gate", AlwaysPlan(),
                    FaultAction(kind="delay", delay=0.01))

        def driver():
            for i in range(20):
                yield from db.put(encode_key(i), VALUE)
            out = []
            for i in range(20):
                got = yield from db.get(encode_key(i))
                out.append(got)
            return out

        values = run(env, driver())
        elapsed = env.now
        db.close()
        return values, elapsed

    clean_values, clean_t = drive(arm_delay=False)
    slow_values, slow_t = drive(arm_delay=True)
    assert slow_values == clean_values   # timing faults never alter data
    assert slow_t > clean_t


def test_dropped_kv_command_loses_the_acked_write_and_is_detected():
    env = Environment()
    db, ssd, cpu, reg = make_faulty_system(env)
    _quiet(db)
    key = encode_key(5)
    oracle = DifferentialOracle(seed=reg.seed)

    def driver():
        oracle.begin_put(key, b"old-" * 20)
        yield from db.put(key, b"old-" * 20)
        oracle.ack()
        db.detector.stall_condition = True
        reg.arm("kv.put_batch.submit", NthOccurrencePlan(1),
                FaultAction(kind=DROP))
        oracle.begin_put(key, b"new-" * 20)
        yield from db.put(key, b"new-" * 20)   # acked, but silently lost
        oracle.ack()
        got = yield from db.get(key)
        return got

    got = run(env, driver())
    assert ssd.kv.lost_commands == 1
    # The device still serves the stale value; the differential oracle is
    # what catches the lost acknowledged write.
    with pytest.raises(AssertionError) as exc:
        oracle.check_read(key, got)
    assert f"{reg.seed:#x}" in str(exc.value)   # failure names its seed
    db.close()


def test_duplicated_kv_command_is_tolerated():
    env = Environment()
    db, ssd, cpu, reg = make_faulty_system(env)
    _quiet(db)
    key = encode_key(9)

    def driver():
        db.detector.stall_condition = True
        reg.arm("kv.put_batch.submit", NthOccurrencePlan(1),
                FaultAction(kind=DUPLICATE))
        yield from db.put(key, VALUE)
        got_stalled = yield from db.get(key)
        db.detector.stall_condition = False
        yield from db.rollback_manager.rollback_once()
        got_after = yield from db.get(key)
        return got_stalled, got_after

    got_stalled, got_after = run(env, driver())
    assert ssd.kv.duplicated_commands == 1
    # Same (key, seq) applied twice is idempotent: reads are unaffected
    # and the rollback still drains the Dev-LSM completely.
    assert got_stalled == VALUE
    assert got_after == VALUE
    assert ssd.kv.is_empty
    assert len(db.metadata) == 0
    db.close()


def test_registry_counters_follow_the_workload():
    env = Environment()
    db, ssd, cpu, reg = make_faulty_system(env, record_trace=True)
    _quiet(db)

    def driver():
        for i in range(30):
            yield from db.put(encode_key(i), VALUE)
        got = yield from db.get(encode_key(3))
        assert got == VALUE

    run(env, driver())
    db.close()
    assert reg.hits["ctl.put.normal"] == 30
    assert reg.hits["db.write.applied"] == 30
    assert reg.hits["wal.append"] == 30
    assert reg.total_hits == len(reg.trace)
    assert reg.injected == []            # nothing armed: pure observation
