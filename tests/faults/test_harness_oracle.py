"""The differential oracle, plus a hypothesis model-based fault test."""

import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import make_faulty_system, run  # noqa: E402

from repro.faults import DifferentialOracle, Violation  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class FakeDb:
    """Minimal generator-protocol store for driving oracle.verify()."""

    def __init__(self, data):
        self.data = data

    def get(self, key):
        if False:
            yield  # pragma: no cover - makes this a generator
        return self.data.get(key)


def _drain(gen):
    """Drive a never-yielding generator to its return value."""
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("generator yielded unexpectedly")


def test_oracle_tracks_committed_and_inflight():
    o = DifferentialOracle(seed=1)
    o.begin_put(b"k", b"v1")
    assert o.inflight == {b"k": b"v1"}
    o.ack()
    assert o.committed == {b"k": b"v1"}
    o.begin_delete(b"k")
    o.ack()
    assert o.committed == {b"k": None}
    assert o.history[b"k"] == {b"v1", None}
    with pytest.raises(RuntimeError):
        o.ack()                      # nothing in flight
    o.begin_put(b"k", b"v2")
    with pytest.raises(RuntimeError):
        o.begin_put(b"k", b"v3")     # previous op never acked
    o.abort()
    assert o.inflight is None
    assert o.committed[b"k"] is None


def test_oracle_expected_respects_inflight_gate():
    o = DifferentialOracle()
    o.begin_put(b"k", b"v1")
    o.ack()
    o.begin_put(b"k", b"v2")          # crash leaves this in flight
    assert o.expected(b"k", allow_inflight=False) == (b"v1",)
    assert o.expected(b"k", allow_inflight=True) == (b"v1", b"v2")


def test_oracle_check_read_embeds_seed():
    o = DifferentialOracle(seed=0xBEEF)
    o.begin_put(b"k", b"v")
    o.ack()
    o.check_read(b"k", b"v")          # matches: no raise
    with pytest.raises(AssertionError) as exc:
        o.check_read(b"k", b"wrong")
    assert "0xbeef" in str(exc.value)


def test_oracle_check_scan():
    o = DifferentialOracle()
    for k, v in ((b"a", b"1"), (b"b", b"2"), (b"c", b"3")):
        o.begin_put(k, v)
        o.ack()
    o.begin_delete(b"b")
    o.ack()
    o.check_scan(b"a", [(b"a", b"1"), (b"c", b"3")], 5)
    with pytest.raises(AssertionError):
        o.check_scan(b"a", [(b"a", b"1"), (b"b", b"2")], 5)


def test_oracle_verify_flags_durability_and_phantom():
    o = DifferentialOracle()
    o.begin_put(b"a", b"v1")
    o.ack()
    o.begin_put(b"b", b"v2")          # in flight at "crash"

    # Lost acked write -> durability violation; visible in-flight write at
    # a pre-persistence site -> phantom.
    out = _drain(o.verify(FakeDb({b"a": None, b"b": b"v2"}),
                          allow_inflight=False))
    kinds = {(v.key, v.kind) for v in out}
    assert (b"a", "durability") in kinds
    assert (b"b", "phantom") in kinds

    # Same store checked post-persistence: the in-flight value is legal,
    # but the lost acked write still is not.
    out = _drain(o.verify(FakeDb({b"a": b"v1", b"b": b"v2"}),
                          allow_inflight=True))
    assert out == []


def test_violation_describe_mentions_key_and_kind():
    v = Violation(key=b"k", got=b"x", allowed=(b"y",), kind="durability")
    assert "durability" in v.describe()
    assert "b'k'" in v.describe()


# -- model-based property test ---------------------------------------------
_KEYS = st.integers(min_value=0, max_value=15)
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), _KEYS, st.binary(min_size=1, max_size=48)),
        st.tuples(st.just("delete"), _KEYS, st.just(b"")),
        st.tuples(st.just("get"), _KEYS, st.just(b"")),
        st.tuples(st.just("stall"), st.just(0), st.just(b"")),
        st.tuples(st.just("unstall"), st.just(0), st.just(b"")),
        st.tuples(st.just("rollback"), st.just(0), st.just(b"")),
    ),
    max_size=40,
)


@SETTINGS
@given(ops=_OPS)
def test_model_based_differential_with_interface_switching(ops):
    """Any interleaving of puts/deletes/reads with stall-window toggles and
    rollbacks must stay byte-identical to the in-memory model."""
    env = Environment()
    db, ssd, cpu, reg = make_faulty_system(env)
    db.detector.stop()
    db.rollback_manager.stop()
    oracle = DifferentialOracle(seed=reg.seed)

    def driver():
        for op, k, v in ops:
            key = encode_key(k)
            if op == "put":
                oracle.begin_put(key, v)
                yield from db.put(key, v)
                oracle.ack()
            elif op == "delete":
                oracle.begin_delete(key)
                yield from db.delete(key)
                oracle.ack()
            elif op == "get":
                got = yield from db.get(key)
                oracle.check_read(key, got)
            elif op == "stall":
                db.detector.stall_condition = True
            elif op == "unstall":
                db.detector.stall_condition = False
            elif op == "rollback" and not db.detector.stall_condition:
                yield from db.final_rollback()
        db.detector.stall_condition = False
        yield from db.final_rollback()
        for key in oracle.tracked_keys():
            got = yield from db.get(key)
            oracle.check_read(key, got)

    run(env, driver())
    assert ssd.kv.is_empty
    assert len(db.metadata) == 0
    db.close()
