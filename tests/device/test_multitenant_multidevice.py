"""Tests for per-tenant KV namespaces and the two-device deployment."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_options  # noqa: E402

from repro.core import KvaccelDb  # noqa: E402
from repro.device import (  # noqa: E402
    CpuModel,
    DevLsmConfig,
    HybridSsd,
    HybridSsdConfig,
    KiB,
    MiB,
    MultiDeviceSetup,
    NandGeometry,
)
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


def small_cfg(**kw):
    geo = NandGeometry(channels=2, ways=2, blocks_per_way=64,
                       pages_per_block=16, page_size=4096)
    base = dict(geometry=geo, peak_nand_bandwidth=50 * MiB,
                devlsm=DevLsmConfig(memtable_bytes=8 * KiB))
    base.update(kw)
    return HybridSsdConfig(**base)


class TestKvNamespaces:
    def _iface(self, env):
        cpu = CpuModel(env, cores=8)
        ssd = HybridSsd(env, cpu, small_cfg())
        return ssd.kv_namespaces(cpu), ssd

    def test_create_and_isolation(self):
        env = Environment()
        iface, _ = self._iface(env)
        a = iface.create("tenant-a", quota_bytes=1 * MiB)
        b = iface.create("tenant-b", quota_bytes=1 * MiB)
        assert a.nsid != b.nsid

        run(env, a.kv.put(encode_key(1), 1, b"a-value"))
        run(env, b.kv.put(encode_key(1), 2, b"b-value"))
        ea = run(env, a.kv.get(encode_key(1)))
        eb = run(env, b.kv.get(encode_key(1)))
        assert ea[3] == b"a-value"
        assert eb[3] == b"b-value"
        # a key written only by A is invisible to B
        run(env, a.kv.put(encode_key(7), 3, b"only-a"))
        assert run(env, b.kv.get(encode_key(7))) is None

    def test_quota_accounting(self):
        env = Environment()
        iface, _ = self._iface(env)
        a = iface.create("a", quota_bytes=4 * KiB)
        assert not a.over_quota
        for i in range(8):
            run(env, a.kv.put(encode_key(i), i, b"x" * 1024))
        assert a.used_bytes > 4 * KiB
        assert a.over_quota

    def test_capacity_limit(self):
        env = Environment()
        iface, ssd = self._iface(env)
        with pytest.raises(ValueError):
            iface.create("huge", quota_bytes=ssd.kv_capacity_bytes + 1)
        iface.create("half", quota_bytes=ssd.kv_capacity_bytes // 2)
        with pytest.raises(ValueError):
            iface.create("overflow",
                         quota_bytes=ssd.kv_capacity_bytes // 2 + 4096)

    def test_delete_resets_tenant(self):
        env = Environment()
        iface, _ = self._iface(env)
        a = iface.create("a", quota_bytes=1 * MiB)
        run(env, a.kv.put(encode_key(1), 1, b"v"))
        iface.delete(a.nsid)
        assert a.kv.is_empty
        with pytest.raises(KeyError):
            iface.get(a.nsid)
        with pytest.raises(KeyError):
            iface.delete(a.nsid)

    def test_tenants_share_nand_contention(self):
        """Two tenants writing concurrently see the shared NAND queue."""
        env = Environment()
        iface, ssd = self._iface(env)
        a = iface.create("a", quota_bytes=1 * MiB)
        b = iface.create("b", quota_bytes=1 * MiB)

        def tenant(ns, base):
            for i in range(200):
                yield from ns.kv.put(encode_key(base + i), i + 1, b"y" * 512)

        pa = env.process(tenant(a, 0))
        pb = env.process(tenant(b, 10_000))
        env.run(until=env.all_of([pa, pb]))
        assert iface.total_used_bytes > 0
        assert ssd.nand.ledger.total_bytes > 0
        assert len(iface.namespaces()) == 2

    def test_custom_memtable_budget(self):
        env = Environment()
        iface, _ = self._iface(env)
        a = iface.create("a", quota_bytes=1 * MiB, memtable_bytes=2 * KiB)
        assert a.kv.devlsm.config.memtable_bytes == 2 * KiB


class TestMultiDevice:
    def test_kvaccel_runs_on_two_devices(self):
        env = Environment()
        cpu = CpuModel(env, cores=8)
        setup = MultiDeviceSetup(env, cpu, small_cfg(), small_cfg())
        db = KvaccelDb(env, small_options(), setup, cpu, rollback="disabled")
        db.detector.stop()

        def gen():
            for i in range(200):
                yield from db.put(encode_key(i), b"m-%d" % i)
            db.detector.stall_condition = True
            for i in range(200, 400):
                yield from db.put(encode_key(i), b"d-%d" % i)
            db.detector.stall_condition = False

        run(env, gen())
        assert db.controller.redirected_writes == 200
        for k in (0, 250, 399):
            assert run(env, db.get(encode_key(k))) is not None, k
        db.close()

    def test_redirected_traffic_lands_on_second_device(self):
        env = Environment()
        cpu = CpuModel(env, cores=8)
        setup = MultiDeviceSetup(env, cpu, small_cfg(), small_cfg())
        db = KvaccelDb(env, small_options(), setup, cpu, rollback="disabled")
        db.detector.stop()
        db.detector.stall_condition = True

        def gen():
            for i in range(100):
                yield from db.put(encode_key(i), b"x" * 1024)

        run(env, gen())
        # KV payloads cross device B's link; device A's NAND only holds the
        # (empty) Main-LSM artifacts.
        assert setup.kv_ssd.pcie.ledger.total_bytes >= 100 * 1024
        assert setup.kv_ssd.nand.ledger.total_bytes >= 0
        assert setup.block_ssd.devlsm.is_empty
        assert not setup.kv_ssd.devlsm.is_empty
        db.close()

    def test_multi_device_avoids_nand_contention(self):
        """Rollback merge traffic hits device A while device B serves the
        bulk scan: the single-device setup funnels both through one NAND."""
        env = Environment()
        cpu = CpuModel(env, cores=8)
        setup = MultiDeviceSetup(env, cpu, small_cfg(), small_cfg())
        db = KvaccelDb(env, small_options(), setup, cpu, rollback="disabled")
        db.detector.stop()
        db.detector.stall_condition = True

        def load():
            for i in range(300):
                yield from db.put(encode_key(i), b"z" * 512)
            db.detector.stall_condition = False

        run(env, load())
        run(env, db.final_rollback())
        assert setup.kv_ssd.devlsm.is_empty
        for k in (0, 150, 299):
            assert run(env, db.get(encode_key(k))) is not None
        db.close()
