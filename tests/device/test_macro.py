"""Macro events: channel-burst batching on the NAND and PCIe paths.

A burst schedules one kernel event per group of up to MACRO_MAX page
operations, but every per-op plane must be preserved: fault probes fire
per op, the traffic ledger sees each op over the exact sub-interval it
held the channel, the error model consults per op (and truncates the
burst like the scalar path), and FIFO fairness holds at group
granularity.  Timing must match a back-to-back scalar sequence modulo
float reassociation (one summed timeout vs chained additions).
"""

import pytest

from repro.device import MiB, NandArray, NandGeometry
from repro.device.error_model import NandErrorConfig, NandErrorModel
from repro.device.ftl import Ftl
from repro.device.pcie import MACRO_MAX, BandwidthPipe, TrafficLedger
from repro.faults.plan import AlwaysPlan, NthOccurrencePlan
from repro.faults.registry import (
    DELAY,
    FAIL,
    FaultAction,
    FaultRegistry,
    InjectedFault,
)
from repro.resil import DeviceError
from repro.sim import Environment


def run(env, gen):
    out = []

    def wrap():
        out.append((yield from gen))

    env.process(wrap())
    env.run()
    return out[0]


def small_ftl():
    return Ftl(NandGeometry(channels=1, ways=1, blocks_per_way=16,
                            pages_per_block=4, page_size=4096))


# ------------------------------------------------------- pcie transfer_burst

def test_transfer_burst_matches_scalar_timing_and_ledger():
    sizes = [512 * 1024, 256 * 1024, 128 * 1024] * 12   # 36 chunks, 3 groups

    def scalar():
        env = Environment()
        pipe = BandwidthPipe(env, 100 * MiB, latency=5e-6,
                             ledger=TrafficLedger(bucket=0.01), name="p")

        def go():
            for nb in sizes:
                yield from pipe.transfer(nb, direction="rx")

        env.process(go())
        env.run()
        return env, pipe

    env_b = Environment()
    pipe_b = BandwidthPipe(env_b, 100 * MiB, latency=5e-6,
                           ledger=TrafficLedger(bucket=0.01), name="p")
    env_b.process(pipe_b.transfer_burst(sizes, direction="rx"))
    env_b.run()

    env_s, pipe_s = scalar()
    assert env_b.now == pytest.approx(env_s.now)
    assert pipe_b.busy_time == pytest.approx(pipe_s.busy_time)
    lb, ls = pipe_b.ledger, pipe_s.ledger
    assert lb.total_bytes == pytest.approx(ls.total_bytes)
    # Per-op attribution: the same bytes land in the same time buckets.
    assert set(lb._buckets) == set(ls._buckets)
    for k in ls._buckets:
        assert lb._buckets[k] == pytest.approx(ls._buckets[k])


def test_transfer_burst_coalesces_kernel_events():
    env = Environment()
    pipe = BandwidthPipe(env, 100 * MiB, name="p")
    n = MACRO_MAX * 2 + 3
    env.process(pipe.transfer_burst([4096] * n))
    env.run()
    assert env.macro.bursts == 1
    assert env.macro.ops == n
    assert env.macro.events == 3                       # ceil(35 / 16)
    assert env.macro.coalesce_factor == pytest.approx(n / 3)


def test_single_chunk_burst_delegates_to_scalar_path():
    env = Environment()
    pipe = BandwidthPipe(env, 100 * MiB, name="p")
    env.process(pipe.transfer_burst([4096]))
    env.run()
    assert env.macro.bursts == 0                       # scalar path: no macro


def test_empty_burst_is_a_no_op():
    env = Environment()
    pipe = BandwidthPipe(env, 100 * MiB, name="p")
    env.process(pipe.transfer_burst([]))
    env.run()
    assert env.now == 0.0
    assert env.macro.ops == 0


def test_transfer_burst_validates_like_scalar():
    env = Environment()
    pipe = BandwidthPipe(env, 100 * MiB, name="p")
    with pytest.raises(ValueError):
        run(env, pipe.transfer_burst([4096, 8192], direction="sideways"))
    env2 = Environment()
    pipe2 = BandwidthPipe(env2, 100 * MiB, name="p")
    with pytest.raises(ValueError):
        run(env2, pipe2.transfer_burst([4096, -1]))


def test_transfer_burst_fault_probe_fires_per_chunk():
    env = Environment()
    reg = FaultRegistry(seed=3).install(env)
    # Fail exactly the 5th pipe.transfer probe: chunks 1-4 of the burst
    # must survive, the 5th must raise — proof the probe is per op, not
    # per burst.
    reg.arm("p.transfer", NthOccurrencePlan(5), FaultAction(FAIL),
            validate=False)
    pipe = BandwidthPipe(env, 100 * MiB, name="p")
    with pytest.raises(InjectedFault):
        run(env, pipe.transfer_burst([4096] * 8))


def test_transfer_burst_folds_delay_into_faulted_chunk():
    def total_time(arm_delay):
        env = Environment()
        if arm_delay:
            reg = FaultRegistry(seed=3).install(env)
            reg.arm("p.transfer", AlwaysPlan(),
                    FaultAction(DELAY, delay=0.5), validate=False)
        pipe = BandwidthPipe(env, 100 * MiB, name="p")
        env.process(pipe.transfer_burst([4096] * 4))
        env.run()
        return env.now

    assert total_time(True) == pytest.approx(total_time(False) + 4 * 0.5)


# ------------------------------------------------------------ nand io_burst

def test_io_burst_matches_scalar_timing_and_ledger():
    ops = [("read", 64 * 1024), ("program", 32 * 1024)] * 10

    env_s = Environment()
    nand_s = NandArray(env_s, NandGeometry(), peak_bandwidth=100 * MiB)

    def scalar():
        for op, nb in ops:
            yield from nand_s.io(op, nb)

    env_s.process(scalar())
    env_s.run()

    env_b = Environment()
    nand_b = NandArray(env_b, NandGeometry(), peak_bandwidth=100 * MiB)
    env_b.process(nand_b.io_burst(ops))
    env_b.run()

    assert env_b.now == pytest.approx(env_s.now)
    assert nand_b.busy_time == pytest.approx(nand_s.busy_time)
    assert nand_b.ledger.total_bytes == pytest.approx(
        nand_s.ledger.total_bytes)
    assert set(nand_b.ledger._buckets) == set(nand_s.ledger._buckets)
    for k in nand_s.ledger._buckets:
        assert nand_b.ledger._buckets[k] == pytest.approx(
            nand_s.ledger._buckets[k])


def test_io_burst_coalesces_and_counts():
    env = Environment()
    nand = NandArray(env, NandGeometry(), peak_bandwidth=100 * MiB)
    n = MACRO_MAX + 1
    env.process(nand.io_burst([("program", 4096)] * n))
    env.run()
    assert env.macro.bursts == 1
    assert env.macro.ops == n
    assert env.macro.events == 2


def test_io_burst_error_truncates_like_scalar():
    env = Environment()
    ftl = small_ftl()
    nand = NandArray(env, NandGeometry(), peak_bandwidth=100 * MiB)
    nand.error_model = NandErrorModel(
        env, ftl, NandErrorConfig(program_fail_base=1.0,
                                  retire_after_program_fails=99))
    ftl.write(0)
    with pytest.raises(DeviceError):
        run(env, nand.io_burst([("read", 4096)] * 3
                               + [("program", 4096)] * 5))
    # The failing program is op 4; ops after it never ran.
    assert env.macro.ops == 4
    # The failed command still occupied the media before erroring.
    assert env.now > 0.0
    assert nand.busy_time == pytest.approx(env.now)


def test_io_burst_fault_site_per_op():
    env = Environment()
    reg = FaultRegistry(seed=3).install(env)
    reg.arm("nand.read", NthOccurrencePlan(3), FaultAction(FAIL))
    nand = NandArray(env, NandGeometry(), peak_bandwidth=100 * MiB)
    with pytest.raises(InjectedFault):
        run(env, nand.io_burst([("read", 4096)] * 6))


def test_io_burst_fifo_fairness_at_group_granularity():
    env = Environment()
    nand = NandArray(env, NandGeometry(), peak_bandwidth=100 * MiB)
    done = []

    def burst(name, n_ops):
        yield from nand.io_burst([("read", 4096)] * n_ops)
        done.append(name)

    # A needs two channel grants (2 groups); B one.  The channel is
    # re-requested between groups, so B runs between A's groups and
    # finishes first — scalar-FIFO behaviour at group granularity.
    env.process(burst("A", MACRO_MAX * 2))
    env.process(burst("B", MACRO_MAX))
    env.run()
    assert done == ["B", "A"]


def test_io_burst_validates_op_and_bytes():
    env = Environment()
    nand = NandArray(env, NandGeometry(), peak_bandwidth=100 * MiB)
    with pytest.raises(ValueError):
        run(env, nand.io_burst([("read", 4096), ("program", -1)]))
    env2 = Environment()
    nand2 = NandArray(env2, NandGeometry(), peak_bandwidth=100 * MiB)
    with pytest.raises(ValueError):
        run(env2, nand2.io_burst([("flurp", 4096), ("read", 4096)]))


# --------------------------------------------------------- ftl write_batch

def test_ftl_write_batch_is_strictly_equivalent_to_scalar_writes():
    a, b = small_ftl(), small_ftl()
    lpns = [0, 3, 1, 0, 2, 5, 1]
    ppns_batch = a.write_batch(lpns)
    ppns_scalar = [b.write(lpn) for lpn in lpns]
    assert ppns_batch == ppns_scalar
    assert a.state_digest() == b.state_digest()


def test_ftl_write_batch_accepts_generators():
    # devlsm._flush passes a generator expression of fresh LPNs.
    a, b = small_ftl(), small_ftl()
    assert a.write_batch(lpn for lpn in [0, 1, 2]) == b.write_batch([0, 1, 2])
