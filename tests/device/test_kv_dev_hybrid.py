"""Tests for the NVMe-KV command layer and the assembled hybrid SSD."""

import pytest

from repro.device import (
    CpuModel,
    DevLsmConfig,
    HybridSsd,
    HybridSsdConfig,
    KiB,
    MiB,
    NandGeometry,
)
from repro.sim import Environment
from repro.types import ValueRef, encode_key


def small_ssd(env, host_cpu=None, **devlsm_kw):
    geo = NandGeometry(channels=2, ways=2, blocks_per_way=64,
                       pages_per_block=16, page_size=4096)
    cfg = HybridSsdConfig(
        geometry=geo,
        peak_nand_bandwidth=50 * MiB,
        devlsm=DevLsmConfig(memtable_bytes=8 * KiB, **devlsm_kw),
    )
    host_cpu = host_cpu or CpuModel(env, cores=8, name="host")
    return HybridSsd(env, host_cpu, cfg)


def run(env, gen):
    return env.run(until=env.process(gen))


class TestKvDevice:
    def test_put_get_roundtrip(self):
        env = Environment()
        ssd = small_ssd(env)
        run(env, ssd.kv.put(encode_key(1), 100, b"value-1"))
        e = run(env, ssd.kv.get(encode_key(1)))
        assert e[3] == b"value-1"

    def test_get_missing(self):
        env = Environment()
        ssd = small_ssd(env)
        assert run(env, ssd.kv.get(encode_key(9))) is None

    def test_exist(self):
        env = Environment()
        ssd = small_ssd(env)
        run(env, ssd.kv.put(encode_key(2), 1, b"x"))
        assert run(env, ssd.kv.exist(encode_key(2))) is True
        assert run(env, ssd.kv.exist(encode_key(3))) is False

    def test_delete_makes_exist_false(self):
        env = Environment()
        ssd = small_ssd(env)
        run(env, ssd.kv.put(encode_key(4), 1, b"x"))
        run(env, ssd.kv.delete(encode_key(4), 2))
        assert run(env, ssd.kv.exist(encode_key(4))) is False

    def test_put_charges_pcie_payload(self):
        env = Environment()
        ssd = small_ssd(env)
        before = ssd.pcie.ledger.total_bytes
        run(env, ssd.kv.put(encode_key(5), 1, ValueRef(seed=5, size=4096)))
        delta = ssd.pcie.ledger.total_bytes - before
        assert delta >= 4096 + 4  # value + key at least

    def test_iterator_commands(self):
        env = Environment()
        ssd = small_ssd(env)
        for k in (1, 3, 5, 7):
            run(env, ssd.kv.put(encode_key(k), k, b"v%d" % k))
        it = run(env, ssd.kv.create_iterator())
        first = run(env, ssd.kv.iter_seek(it, encode_key(2)))
        assert first[0] == encode_key(3)
        nxt = run(env, ssd.kv.iter_next(it))
        assert nxt[0] == encode_key(5)
        run(env, ssd.kv.iter_next(it))
        assert run(env, ssd.kv.iter_next(it)) is None

    def test_bulk_scan_and_reset(self):
        env = Environment()
        ssd = small_ssd(env)
        for k in range(20):
            run(env, ssd.kv.put(encode_key(k), k, b"b" * 64))
        entries = run(env, ssd.kv.bulk_scan())
        assert len(entries) == 20
        run(env, ssd.kv.reset())
        assert ssd.kv.is_empty

    def test_command_counts_and_host_cpu(self):
        env = Environment()
        host = CpuModel(env, cores=8, name="host")
        ssd = small_ssd(env, host_cpu=host)
        for k in range(5):
            run(env, ssd.kv.put(encode_key(k), k, b"v"))
        run(env, ssd.kv.get(encode_key(0)))
        assert ssd.kv.command_counts["put"] == 5
        assert ssd.kv.command_counts["get"] == 1
        assert host.busy_by_tag["nvme_kv"] > 0


class TestHybridSsd:
    def test_block_and_kv_coexist(self):
        env = Environment()
        ssd = small_ssd(env)

        def proc():
            yield from ssd.block.write(0, 64 * KiB)
            yield from ssd.kv.put(encode_key(1), 1, b"kv-value")
            data = yield from ssd.kv.get(encode_key(1))
            return data

        e = env.run(until=env.process(proc()))
        assert e[3] == b"kv-value"
        assert ssd.block.bytes_written == 64 * KiB

    def test_disaggregation_point_splits_space(self):
        env = Environment()
        ssd = small_ssd(env)
        assert 0 < ssd.disaggregation_point < ssd.ftl.total_logical_pages
        assert ssd.block_capacity_bytes > 0
        assert ssd.kv_capacity_bytes > 0

    def test_both_interfaces_share_pcie_ledger(self):
        env = Environment()
        ssd = small_ssd(env)

        def proc():
            yield from ssd.block.write(0, 32 * KiB)
            yield from ssd.kv.put(encode_key(1), 1, b"x" * 1024)

        env.run(until=env.process(proc()))
        assert ssd.pcie.ledger.total_bytes >= 32 * KiB + 1024

    def test_block_write_out_of_range(self):
        env = Environment()
        ssd = small_ssd(env)
        from repro.device import FtlError

        def proc():
            yield from ssd.block.write(ssd.block_capacity_bytes, 4096)

        with pytest.raises(FtlError):
            env.run(until=env.process(proc()))

    def test_namespaces_pair_block_and_kv(self):
        env = Environment()
        ssd = small_ssd(env)
        ns1 = ssd.create_namespace("tenant-a", 256 * KiB, 64 * KiB)
        ns2 = ssd.create_namespace("tenant-b", 256 * KiB, 64 * KiB)
        assert ns1.nsid != ns2.nsid
        assert ns2.block_offset == ns1.block_offset + ns1.block_bytes
        assert len(ssd.namespaces()) == 2
        ssd.delete_namespace(ns1.nsid)
        assert len(ssd.namespaces()) == 1

    def test_namespace_exhaustion(self):
        env = Environment()
        ssd = small_ssd(env)
        with pytest.raises(ValueError):
            ssd.create_namespace("huge", ssd.block_capacity_bytes + 1, 1024)
        with pytest.raises(ValueError):
            ssd.create_namespace("hugekv", 1024, ssd.kv_capacity_bytes + 1)
        with pytest.raises(KeyError):
            ssd.delete_namespace(99)
