"""Wear-driven NAND error model: program/erase failures, ECC retry tails."""

import pytest

from repro.device import NandArray, NandGeometry
from repro.device.error_model import NandErrorConfig, NandErrorModel
from repro.device.ftl import Ftl
from repro.resil import MEDIA, TRANSIENT, DeviceError
from repro.sim import Environment


class ScriptedRng:
    """Deterministic stand-in for the model's private Random."""

    def __init__(self, draws):
        self.draws = list(draws)

    def random(self):
        return self.draws.pop(0)


def make(config=None, **cfg_kw):
    env = Environment()
    ftl = Ftl(NandGeometry(channels=1, ways=1, blocks_per_way=16,
                           pages_per_block=4, page_size=4096))
    model = NandErrorModel(env, ftl, config or NandErrorConfig(**cfg_kw))
    return env, ftl, model


def run(env, gen):
    out = []

    def wrap():
        out.append((yield from gen))

    env.process(wrap())
    env.run()
    return out[0]


# ----------------------------------------------------------------- wear
def test_wear_interpolates_failure_probability():
    env, ftl, model = make(pe_cycle_limit=100,
                           program_fail_base=0.0, program_fail_max=0.5)
    blk = 3
    assert model._prob(0.0, 0.5, blk) == 0.0       # fresh block
    ftl.erase_counts[blk] = 50
    assert model._prob(0.0, 0.5, blk) == pytest.approx(0.25)
    ftl.erase_counts[blk] = 1000                   # past rated life: clamp
    assert model._prob(0.0, 0.5, blk) == pytest.approx(0.5)
    assert model._wear_frac(-1) == 0.0             # no block yet programmed


# ------------------------------------------------------------- program
def test_program_failure_is_transient_at_nand_program():
    env, ftl, model = make(program_fail_base=1.0, retire_after_program_fails=9)
    ftl.write(0)
    _, err = model.on_io("program", 4096)
    assert isinstance(err, DeviceError)
    assert err.kind == TRANSIENT
    assert err.site == "nand.program"
    assert model.program_fails == 1


def test_program_fail_streak_retires_block():
    env, ftl, model = make(program_fail_base=1.0, retire_after_program_fails=2)
    ftl.write(0)
    blk = ftl.last_programmed_block
    model.on_io("program", 4096)
    assert model.grown_bad_blocks == 0             # one strike
    model.on_io("program", 4096)
    assert model.grown_bad_blocks == 1             # two strikes: retired
    assert blk in ftl.retired_blocks


def test_success_resets_fail_streak():
    env, ftl, model = make(retire_after_program_fails=2)
    model.rng = ScriptedRng([0.0, 1.0, 0.0, 1.0])  # fail, ok, fail, ok
    model.config = NandErrorConfig(program_fail_base=0.5,
                                   retire_after_program_fails=2)
    ftl.write(0)
    for _ in range(4):
        model.on_io("program", 4096)
    assert model.program_fails == 2
    assert model.grown_bad_blocks == 0             # streak never reached 2


def test_allocator_skips_retired_block():
    env, ftl, model = make()
    region = ftl.region("kv")
    bad = region.free_blocks[0]
    ftl.retire_block(bad)
    ftl.write(region.lpn_start)
    assert ftl.last_programmed_block != bad
    assert bad not in region.free_blocks


# --------------------------------------------------------------- erase
def test_erase_failure_masked_but_retires():
    env, ftl, model = make(erase_fail_base=1.0)
    ftl.last_erased_block = 5
    _, err = model.on_io("erase", 0)
    assert err is None                             # host never sees it
    assert model.erase_fails == 1
    assert 5 in ftl.retired_blocks
    assert model.grown_bad_blocks == 1


# ---------------------------------------------------------------- read
def test_read_retry_adds_latency_rounds():
    env, ftl, model = make(read_retry_base=1.0, read_retry_rounds=3,
                           read_retry_latency=60e-6, uncorrectable_prob=0.0)
    extra, err = model.on_io("read", 4096)
    assert err is None
    assert extra == pytest.approx(3 * 60e-6)
    assert model.read_retry_rounds == 3


def test_read_retry_telemetry_channel():
    from repro.obs import TelemetryHub

    env = Environment()
    hub = TelemetryHub(env, period=0.001).install(env)
    ftl = Ftl(NandGeometry(channels=1, ways=1, blocks_per_way=16,
                           pages_per_block=4, page_size=4096))
    model = NandErrorModel(env, ftl, NandErrorConfig(
        read_retry_base=1.0, read_retry_rounds=2, uncorrectable_prob=0.0))
    model.on_io("read", 4096)
    assert "nand.read_retries" in hub.channels


def test_exhausted_retries_can_go_uncorrectable():
    env, ftl, model = make(read_retry_base=1.0, read_retry_rounds=2,
                           uncorrectable_prob=1.0)
    extra, err = model.on_io("read", 4096)
    assert extra == pytest.approx(2 * model.config.read_retry_latency)
    assert isinstance(err, DeviceError)
    assert err.kind == MEDIA
    assert err.site == "nand.read"
    assert model.uncorrectable_reads == 1


def test_clean_read_costs_nothing():
    env, ftl, model = make(read_retry_base=0.0)
    assert model.on_io("read", 4096) == (0.0, None)


# --------------------------------------------------- NandArray plumbing
def test_nand_array_defaults_to_no_error_model():
    env = Environment()
    nand = NandArray(env, NandGeometry())
    assert nand.error_model is None
    run(env, nand.io("program", 4096))             # unchanged happy path


def test_nand_array_raises_after_service_time():
    env = Environment()
    geometry = NandGeometry(channels=1, ways=1, blocks_per_way=16,
                            pages_per_block=4, page_size=4096)
    nand = NandArray(env, geometry)
    ftl = Ftl(geometry)
    nand.error_model = NandErrorModel(env, ftl, NandErrorConfig(
        program_fail_base=1.0, retire_after_program_fails=99))
    ftl.write(0)

    caught = []

    def proc():
        try:
            yield from nand.io("program", 4096)
        except DeviceError as exc:
            caught.append((env.now, exc))

    env.process(proc())
    env.run()
    (t, exc), = caught
    assert exc.kind == TRANSIENT
    # The failing command still occupied the media for its service time.
    assert t == pytest.approx(nand.service_time("program", 4096))
    assert nand.busy_time > 0


def test_nand_array_read_latency_tail():
    env = Environment()
    geometry = NandGeometry(channels=1, ways=1, blocks_per_way=16,
                            pages_per_block=4, page_size=4096)
    nand = NandArray(env, geometry)
    ftl = Ftl(geometry)
    cfg = NandErrorConfig(read_retry_base=1.0, read_retry_rounds=3,
                          read_retry_latency=60e-6, uncorrectable_prob=0.0)
    nand.error_model = NandErrorModel(env, ftl, cfg)
    run(env, nand.io("read", 4096))
    assert env.now == pytest.approx(
        nand.service_time("read", 4096) + 3 * cfg.read_retry_latency)


# ------------------------------------------------------------- plumbing
def test_snapshot_shape():
    env, ftl, model = make(erase_fail_base=1.0)
    ftl.last_erased_block = 2
    model.on_io("erase", 0)
    snap = model.snapshot()
    assert snap["erase_fails"] == 1
    assert snap["grown_bad_blocks"] == 1
    assert snap["retired_blocks"] == [2]
    assert set(snap) == {"program_fails", "erase_fails", "read_retry_rounds",
                         "uncorrectable_reads", "grown_bad_blocks",
                         "retired_blocks"}


def test_seeded_draws_are_deterministic():
    _, _, a = make(NandErrorConfig(seed=99))
    _, _, b = make(NandErrorConfig(seed=99))
    assert [a.rng.random() for _ in range(8)] == \
           [b.rng.random() for _ in range(8)]


def test_seed_falls_back_to_fault_registry():
    from repro.faults.registry import FaultRegistry

    env = Environment()
    FaultRegistry(seed=1234).install(env)
    ftl = Ftl(NandGeometry(channels=1, ways=1, blocks_per_way=16,
                           pages_per_block=4, page_size=4096))
    model = NandErrorModel(env, ftl)
    import random
    assert model.rng.random() == random.Random("1234:nand-errors").random()


def test_config_validation():
    with pytest.raises(ValueError):
        NandErrorConfig(pe_cycle_limit=0)
    with pytest.raises(ValueError):
        NandErrorConfig(program_fail_base=1.5)
    with pytest.raises(ValueError):
        NandErrorConfig(read_retry_latency=-1.0)
    with pytest.raises(ValueError):
        NandErrorConfig(retire_after_program_fails=0)
