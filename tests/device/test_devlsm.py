"""Tests for the in-device Dev-LSM."""

import pytest

from repro.device import (
    CpuModel,
    DevLsm,
    DevLsmConfig,
    Ftl,
    MiB,
    NandArray,
    NandGeometry,
    PcieLink,
)
from repro.sim import Environment
from repro.types import KIND_DELETE, KIND_PUT, encode_key, make_entry


def make_devlsm(env, memtable_bytes=4096, **cfg_kw):
    g = NandGeometry(channels=1, ways=1, blocks_per_way=64, pages_per_block=16,
                     page_size=4096)
    ftl = Ftl(g, split_fraction=0.5)
    nand = NandArray(env, g, peak_bandwidth=100 * MiB)
    arm = CpuModel(env, cores=1, name="arm")
    cfg = DevLsmConfig(memtable_bytes=memtable_bytes, **cfg_kw)
    return DevLsm(env, ftl, nand, arm, config=cfg)


def run(env, gen):
    """Drive one generator to completion; return its value."""
    return env.run(until=env.process(gen))


def put(env, dl, k, seq, v=b"v"):
    run(env, dl.put(make_entry(encode_key(k), seq, v)))


def test_put_get_memtable_hit():
    env = Environment()
    dl = make_devlsm(env)
    put(env, dl, 1, 10, b"one")
    e = run(env, dl.get(encode_key(1)))
    assert e[3] == b"one"
    assert e[1] == 10


def test_get_missing_returns_none():
    env = Environment()
    dl = make_devlsm(env)
    assert run(env, dl.get(encode_key(42))) is None


def test_flush_on_memtable_full_creates_run():
    env = Environment()
    dl = make_devlsm(env, memtable_bytes=256)
    for i in range(30):
        put(env, dl, i, i, b"x" * 32)
    assert dl.flush_count >= 1
    assert len(dl.runs) >= 1
    # every key still readable after flush
    for i in range(30):
        e = run(env, dl.get(encode_key(i)))
        assert e is not None


def test_newest_wins_across_runs():
    env = Environment()
    dl = make_devlsm(env, memtable_bytes=128)
    for seq, val in [(1, b"old"), (2, b"mid"), (3, b"new")]:
        put(env, dl, 7, seq, val + b"-" * 60)  # force flushes between
    e = run(env, dl.get(encode_key(7)))
    assert e[3].startswith(b"new")


def test_tombstones_survive():
    env = Environment()
    dl = make_devlsm(env)
    put(env, dl, 5, 1, b"v")
    run(env, dl.put(make_entry(encode_key(5), 2, None, kind=KIND_DELETE)))
    e = run(env, dl.get(encode_key(5)))
    assert e[2] == KIND_DELETE


def test_key_range_and_empty():
    env = Environment()
    dl = make_devlsm(env, memtable_bytes=128)
    assert dl.is_empty
    assert dl.key_range() is None
    for k in (10, 3, 99):
        put(env, dl, k, k, b"x" * 50)
    lo, hi = dl.key_range()
    assert lo == encode_key(3)
    assert hi == encode_key(99)


def test_iterator_sorted_and_deduped():
    env = Environment()
    dl = make_devlsm(env, memtable_bytes=200)
    for i in [5, 3, 9, 3, 7, 5]:
        put(env, dl, i, i + 100, b"x" * 40)  # later seq overwrite
    it = run(env, dl.create_iterator())
    keys = []
    it.seek_to_first()
    while it.valid:
        keys.append(it.entry()[0])
        it.next()
    assert keys == sorted(set(keys))
    assert keys == [encode_key(k) for k in (3, 5, 7, 9)]


def test_iterator_seek():
    env = Environment()
    dl = make_devlsm(env)
    for k in (2, 4, 6):
        put(env, dl, k, k, b"v")
    it = run(env, dl.create_iterator())
    it.seek(encode_key(3))
    assert it.entry()[0] == encode_key(4)
    it.seek(encode_key(7))
    assert not it.valid


def test_bulk_scan_returns_all_and_charges_pcie():
    env = Environment()
    dl = make_devlsm(env, memtable_bytes=300)
    pcie = PcieLink(env, bandwidth=100 * MiB)
    for i in range(40):
        put(env, dl, i, i, b"y" * 30)
    entries = run(env, dl.bulk_scan(pcie))
    assert len(entries) == 40
    assert [e[0] for e in entries] == sorted(e[0] for e in entries)
    assert pcie.ledger.total_bytes > 0


def test_bulk_scan_empty():
    env = Environment()
    dl = make_devlsm(env)
    pcie = PcieLink(env)
    assert run(env, dl.bulk_scan(pcie)) == []


def test_bulk_scan_chunks_at_dma_limit():
    env = Environment()
    dl = make_devlsm(env, memtable_bytes=1 * MiB, dma_chunk_bytes=1024)
    pcie = PcieLink(env, bandwidth=100 * MiB)
    for i in range(100):
        put(env, dl, i, i, b"z" * 100)
    run(env, dl.bulk_scan(pcie))
    # >10 KB of payload with 1 KB chunks: many transfers, bytes conserved.
    total = sum(108 + 8 + 4 - 4 for _ in range(100))  # approximate lower bound
    assert pcie.ledger.total_bytes >= 100 * 100


def test_reset_clears_everything():
    env = Environment()
    dl = make_devlsm(env, memtable_bytes=128)
    for i in range(20):
        put(env, dl, i, i, b"w" * 40)
    assert not dl.is_empty
    dl.reset()
    assert dl.is_empty
    assert dl.entry_count == 0
    assert dl.runs == []
    assert run(env, dl.get(encode_key(1))) is None


def test_device_compaction_merges_runs():
    env = Environment()
    dl = make_devlsm(env, memtable_bytes=128, compaction_enabled=True,
                     compaction_trigger_runs=3)
    for i in range(60):
        put(env, dl, i % 10, i, b"c" * 40)
    assert dl.compaction_count >= 1
    # After compaction correctness holds.
    for k in range(10):
        e = run(env, dl.get(encode_key(k)))
        assert e is not None


def test_get_from_run_charges_nand_read():
    env = Environment()
    dl = make_devlsm(env, memtable_bytes=128)
    for i in range(10):
        put(env, dl, i, i, b"r" * 40)
    assert dl.runs  # flushed at least once
    nand_before = dl.nand.ledger.total_bytes
    key = dl.runs[0].smallest
    run(env, dl.get(key))
    assert dl.nand.ledger.total_bytes > nand_before
