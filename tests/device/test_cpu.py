"""Tests for the CPU busy-time model."""

import pytest

from repro.device import CpuModel
from repro.sim import Environment


def test_consume_blocks_and_accounts():
    env = Environment()
    cpu = CpuModel(env, cores=4)
    done = []

    def proc():
        yield from cpu.consume(2.0, tag="work")
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [pytest.approx(2.0)]
    assert cpu.total_busy == pytest.approx(2.0)
    assert cpu.busy_by_tag["work"] == pytest.approx(2.0)


def test_utilization_window():
    env = Environment()
    cpu = CpuModel(env, cores=2)

    def proc():
        yield from cpu.consume(1.0)

    env.process(proc())
    env.run(until=4)
    # 1 busy core-second over 2 cores x 2 seconds in [0,2)
    assert cpu.utilization(0, 2) == pytest.approx(0.25)


def test_oversubscription_stretches_wall_time():
    env = Environment()
    cpu = CpuModel(env, cores=1)
    done = []

    def proc(name):
        yield from cpu.consume(1.0, tag=name)
        done.append((name, env.now))

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    # Two threads on one core: second entrant sees 2x stretch.
    times = dict(done)
    assert times["a"] == pytest.approx(1.0)
    assert times["b"] == pytest.approx(2.0)
    # Busy accounting stays at requested totals.
    assert cpu.total_busy == pytest.approx(2.0)


def test_no_stretch_when_cores_available():
    env = Environment()
    cpu = CpuModel(env, cores=8)
    done = []

    def proc(i):
        yield from cpu.consume(1.0)
        done.append(env.now)

    for i in range(4):
        env.process(proc(i))
    env.run()
    assert done == [pytest.approx(1.0)] * 4


def test_charge_is_instant():
    env = Environment()
    cpu = CpuModel(env, cores=1)
    cpu.charge(0.5e-6, tag="meta")
    assert env.now == 0
    assert cpu.busy_by_tag["meta"] == pytest.approx(0.5e-6)


def test_zero_consume_is_noop():
    env = Environment()
    cpu = CpuModel(env, cores=1)

    def proc():
        yield from cpu.consume(0.0)
        yield env.timeout(1)

    env.process(proc())
    env.run()
    assert cpu.total_busy == 0


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        CpuModel(env, cores=0)
    cpu = CpuModel(env, cores=1)
    with pytest.raises(ValueError):
        list(cpu.consume(-1))
    with pytest.raises(ValueError):
        cpu.charge(-1)
    with pytest.raises(ValueError):
        cpu.utilization(2, 2)
