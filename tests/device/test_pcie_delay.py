"""Injected PCIe delays must be attributed, not vanish between samples.

Satellite of the resilience PR: a DELAY armed at ``pcie.transfer`` is
folded into the transfer's service interval, so the link's busy time,
the traffic ledger, and the telemetry byte channels all see the slowed
transfer the way Intel PCM would.
"""

import pytest

from repro.device.pcie import PcieLink
from repro.faults.plan import AlwaysPlan, NthOccurrencePlan
from repro.faults.registry import (
    DELAY,
    FAIL,
    FaultAction,
    FaultRegistry,
    InjectedFault,
)
from repro.sim import Environment

NBYTES = 1 << 20


def make_link(env, seconds_per_transfer=1.0, bucket=1.0):
    return PcieLink(env, bandwidth=NBYTES / seconds_per_transfer,
                    latency=0.0, bucket=bucket)


def run_transfer(env, link, nbytes=NBYTES):
    done = []

    def proc():
        yield from link.transfer(nbytes)
        done.append(env.now)

    env.process(proc())
    env.run()
    return done[0]


def test_baseline_transfer_time():
    env = Environment()
    link = make_link(env)
    assert run_transfer(env, link) == pytest.approx(1.0)


def test_injected_delay_stretches_the_transfer():
    env = Environment()
    reg = FaultRegistry(seed=1).install(env)
    reg.arm("pcie.transfer", AlwaysPlan(), FaultAction(DELAY, delay=0.5))
    link = make_link(env)
    assert run_transfer(env, link) == pytest.approx(1.5)
    assert link.busy_time == pytest.approx(1.5)


def test_delay_attributed_in_ledger_buckets():
    env = Environment()
    reg = FaultRegistry(seed=1).install(env)
    reg.arm("pcie.transfer", AlwaysPlan(), FaultAction(DELAY, delay=1.0))
    link = make_link(env, seconds_per_transfer=1.0, bucket=1.0)
    run_transfer(env, link)
    # The 1 MiB moved over [0, 2): half the bytes land in each PCM bucket,
    # instead of all of them in bucket 0 with a dead second after.
    assert link.ledger.total_bytes == NBYTES
    assert link.ledger.bytes_in(0.0, 1.0) == pytest.approx(NBYTES / 2)
    assert link.ledger.bytes_in(1.0, 2.0) == pytest.approx(NBYTES / 2)


def test_delay_shows_in_telemetry_bytes():
    from repro.obs import TelemetryHub

    env = Environment()
    hub = TelemetryHub(env, period=1.0).install(env)
    reg = FaultRegistry(seed=1).install(env)
    reg.arm("pcie.transfer", AlwaysPlan(), FaultAction(DELAY, delay=0.5))
    link = make_link(env)

    def proc():
        yield from link.transfer(NBYTES)
        yield env.timeout(2.0)          # let the sampler close its buckets

    # The hub's sampler never goes idle, so run to the workload process.
    env.run(until=env.process(proc()))
    assert sum(hub.channels["pcie.tx_bytes"].values) == pytest.approx(NBYTES)


def test_only_armed_occurrence_is_delayed():
    env = Environment()
    reg = FaultRegistry(seed=1).install(env)
    reg.arm("pcie.transfer", NthOccurrencePlan(2),
            FaultAction(DELAY, delay=0.25))
    link = make_link(env)
    times = []

    def proc():
        for _ in range(3):
            t0 = env.now
            yield from link.transfer(NBYTES)
            times.append(env.now - t0)

    env.process(proc())
    env.run()
    assert times == [pytest.approx(1.0), pytest.approx(1.25),
                     pytest.approx(1.0)]


def test_fail_action_still_raises():
    env = Environment()
    reg = FaultRegistry(seed=1).install(env)
    reg.arm("pcie.transfer", AlwaysPlan(), FaultAction(FAIL))
    link = make_link(env)
    caught = []

    def proc():
        try:
            yield from link.transfer(NBYTES)
        except InjectedFault as exc:
            caught.append(exc)

    env.process(proc())
    env.run()
    assert caught and caught[0].site == "pcie.transfer"
