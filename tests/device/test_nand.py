"""Tests for the NAND array timing model."""

import pytest

from repro.device import MiB, NandArray, NandGeometry
from repro.sim import Environment


def make_nand(env, peak=None, lanes=1, **geo):
    g = NandGeometry(**geo) if geo else NandGeometry()
    return NandArray(env, g, peak_bandwidth=peak, lanes=lanes)


def test_peak_clamp():
    env = Environment()
    nand = NandArray(env, NandGeometry(), peak_bandwidth=10 * MiB)
    assert nand.read_bw == 10 * MiB
    assert nand.program_bw == 10 * MiB


def test_no_clamp_when_none():
    env = Environment()
    g = NandGeometry()
    nand = NandArray(env, g, peak_bandwidth=None)
    assert nand.read_bw == g.peak_read_bw
    assert nand.program_bw == g.peak_program_bw


def test_service_time_components():
    env = Environment()
    nand = NandArray(env, NandGeometry(), peak_bandwidth=1 * MiB)
    t = NandGeometry().timing
    assert nand.service_time("read", 1 * MiB) == pytest.approx(t.t_read + 1.0)
    assert nand.service_time("program", 1 * MiB) == pytest.approx(t.t_program + 1.0)
    assert nand.service_time("erase", 0) == pytest.approx(t.t_erase)


def test_unknown_op_raises():
    env = Environment()
    nand = make_nand(env, peak=1 * MiB)
    with pytest.raises(ValueError):
        nand.service_time("frobnicate", 1)
    with pytest.raises(ValueError):
        list(nand.io("read", -1))


def test_io_blocks_and_ledgers():
    env = Environment()
    nand = NandArray(env, NandGeometry(), peak_bandwidth=1 * MiB, lanes=1)
    done = []

    def proc():
        yield from nand.io("program", MiB // 2)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done[0] == pytest.approx(0.5, rel=0.01)
    assert nand.ledger.total_bytes == MiB // 2


def test_concurrent_lanes_aggregate_to_peak():
    """With N lanes, N concurrent streams each run at peak/N."""
    env = Environment()
    nand = NandArray(env, NandGeometry(), peak_bandwidth=4 * MiB, lanes=4)
    done = []

    def proc(i):
        yield from nand.io("program", 1 * MiB)
        done.append(env.now)

    for i in range(4):
        env.process(proc(i))
    env.run()
    # 4 MiB total at 4 MiB/s aggregate -> ~1 s for all four.
    assert max(done) == pytest.approx(1.0, rel=0.02)


def test_priority_scheduling_reorders_queue():
    """With priority scheduling, a late flush (prio 0) overtakes queued
    compaction I/O (prio 1)."""
    env = Environment()
    nand = NandArray(env, NandGeometry(), peak_bandwidth=1 * MiB, lanes=1,
                     priority_scheduling=True)
    order = []

    def io(name, prio, delay):
        yield env.timeout(delay)
        yield from nand.io("program", MiB // 4, priority=prio)
        order.append(name)

    env.process(io("head", 1, 0.0))       # occupies the device
    env.process(io("compact", 1, 0.01))   # queued background I/O
    env.process(io("flush", 0, 0.02))     # arrives later, higher priority
    env.run()
    assert order == ["head", "flush", "compact"]


def test_fifo_ignores_priority_param():
    env = Environment()
    nand = NandArray(env, NandGeometry(), peak_bandwidth=1 * MiB, lanes=1)
    order = []

    def io(name, prio, delay):
        yield env.timeout(delay)
        yield from nand.io("program", MiB // 4, priority=prio)
        order.append(name)

    env.process(io("head", 1, 0.0))
    env.process(io("compact", 1, 0.01))
    env.process(io("flush", 0, 0.02))
    env.run()
    assert order == ["head", "compact", "flush"]


def test_fifo_queueing_beyond_lanes():
    env = Environment()
    nand = NandArray(env, NandGeometry(), peak_bandwidth=1 * MiB, lanes=1)
    done = []

    def proc(name):
        yield from nand.io("read", 1 * MiB)
        done.append(name)

    env.process(proc("first"))
    env.process(proc("second"))
    env.run()
    assert done == ["first", "second"]
