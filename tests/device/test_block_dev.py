"""Direct tests for the block interface (BlockDevice)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_device  # noqa: E402

from repro.device import FtlError  # noqa: E402
from repro.sim import Environment  # noqa: E402


def test_write_maps_pages_and_charges_both_pipes():
    env = Environment()
    dev = small_device(env)
    run(env, dev.write(0, 16 * 1024))
    assert dev.bytes_written == 16 * 1024
    assert dev.pcie.ledger.total_bytes >= 16 * 1024
    assert dev.nand.ledger.total_bytes >= 16 * 1024
    # pages mapped in the block region
    assert dev.ftl.mapped_pages("block") >= 4


def test_read_charges_nand_then_pcie():
    env = Environment()
    dev = small_device(env)
    run(env, dev.write(0, 8192))
    nand0 = dev.nand.ledger.total_bytes
    run(env, dev.read(0, 8192))
    assert dev.bytes_read == 8192
    assert dev.nand.ledger.total_bytes == nand0 + 8192


def test_out_of_range_extent_rejected():
    env = Environment()
    dev = small_device(env)
    with pytest.raises(FtlError):
        run(env, dev.write(dev.capacity_bytes - 100, 4096))
    with pytest.raises(ValueError):
        run(env, dev.write(-1, 10))


def test_trim_unmaps_extent():
    env = Environment()
    dev = small_device(env)
    run(env, dev.write(0, 4096 * 4))
    before = dev.ftl.mapped_pages("block")
    dev.trim(0, 4096 * 2)
    assert dev.ftl.mapped_pages("block") == before - 2


def test_overwrite_same_extent_remaps():
    env = Environment()
    dev = small_device(env)
    run(env, dev.write(0, 4096))
    run(env, dev.write(0, 4096))
    # still exactly one live page for that LPN
    assert dev.ftl.mapped_pages("block") == 1


def test_priority_passthrough_smoke():
    env = Environment()
    dev = small_device(env)
    run(env, dev.write(0, 4096, priority=1))
    run(env, dev.read(0, 4096, priority=0))
    assert dev.bytes_written == 4096 and dev.bytes_read == 4096
