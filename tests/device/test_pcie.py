"""Tests for TrafficLedger and BandwidthPipe/PcieLink."""

import pytest

from repro.device import BandwidthPipe, PcieLink, TrafficLedger
from repro.sim import Environment


class TestTrafficLedger:
    def test_single_bucket(self):
        led = TrafficLedger()
        led.record(0.2, 0.8, 600)
        times, values = led.series()
        assert times == [1.0]
        assert values == [600]

    def test_spread_across_buckets_proportional(self):
        led = TrafficLedger()
        led.record(0.5, 2.5, 2000)  # 1000 B/s for 2 s
        _, values = led.series()
        assert values == pytest.approx([500, 1000, 500])

    def test_instantaneous_record(self):
        led = TrafficLedger()
        led.record(3.0, 3.0, 42)
        times, values = led.series()
        assert values[-1] == 42
        assert led.total_bytes == 42

    def test_zero_bytes_ok(self):
        led = TrafficLedger()
        led.record(0, 1, 0)
        assert led.total_bytes == 0

    def test_series_with_t_end_pads_zeros(self):
        led = TrafficLedger()
        led.record(0.0, 1.0, 10)
        times, values = led.series(t_end=5.0)
        assert len(times) == 5
        assert values == [10, 0, 0, 0, 0]

    def test_empty_series(self):
        led = TrafficLedger()
        assert led.series() == ([], [])

    def test_bytes_in_window(self):
        led = TrafficLedger()
        led.record(0.0, 4.0, 400)
        assert led.bytes_in(1.0, 3.0) == pytest.approx(200)

    def test_validation(self):
        led = TrafficLedger()
        with pytest.raises(ValueError):
            led.record(1, 0, 5)
        with pytest.raises(ValueError):
            led.record(0, 1, -5)
        with pytest.raises(ValueError):
            TrafficLedger(bucket=0)

    def test_conservation_many_records(self):
        led = TrafficLedger()
        total = 0.0
        for i in range(50):
            led.record(i * 0.37, i * 0.37 + 1.3, 77)
            total += 77
        _, values = led.series()
        assert sum(values) == pytest.approx(total)
        assert led.total_bytes == pytest.approx(total)


class TestBandwidthPipe:
    def test_service_time(self):
        env = Environment()
        pipe = BandwidthPipe(env, bandwidth=100, latency=0.5)
        assert pipe.service_time(200) == pytest.approx(2.5)

    def test_transfer_blocks_for_service_time(self):
        env = Environment()
        pipe = BandwidthPipe(env, bandwidth=1000)
        done = []

        def proc():
            yield from pipe.transfer(500)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [pytest.approx(0.5)]

    def test_fifo_serialization(self):
        env = Environment()
        pipe = BandwidthPipe(env, bandwidth=100)
        done = []

        def proc(name, n):
            yield from pipe.transfer(n)
            done.append((name, env.now))

        env.process(proc("a", 100))  # 1s
        env.process(proc("b", 200))  # next 2s
        env.run()
        assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(3.0))]

    def test_ledger_records_transfers(self):
        env = Environment()
        led = TrafficLedger()
        pipe = BandwidthPipe(env, bandwidth=100, ledger=led)

        def proc():
            yield from pipe.transfer(250)

        env.process(proc())
        env.run()
        assert led.total_bytes == 250

    def test_invalid_args(self):
        env = Environment()
        with pytest.raises(ValueError):
            BandwidthPipe(env, bandwidth=0)
        with pytest.raises(ValueError):
            BandwidthPipe(env, bandwidth=10, latency=-1)
        pipe = BandwidthPipe(env, bandwidth=10)
        with pytest.raises(ValueError):
            list(pipe.transfer(-1))

    def test_busy_time_accumulates(self):
        env = Environment()
        pipe = BandwidthPipe(env, bandwidth=100)

        def proc():
            yield from pipe.transfer(100)
            yield from pipe.transfer(300)

        env.process(proc())
        env.run()
        assert pipe.busy_time == pytest.approx(4.0)


class TestPcieLink:
    def test_defaults(self):
        env = Environment()
        link = PcieLink(env)
        assert link.bandwidth == PcieLink.GEN2_X8
        assert link.ledger is not None

    def test_link_traffic_series(self):
        env = Environment()
        link = PcieLink(env, bandwidth=1000, latency=0.0)

        def proc():
            yield from link.transfer(1500)  # spans 1.5 s

        env.process(proc())
        env.run()
        _, values = link.ledger.series()
        assert sum(values) == pytest.approx(1500)
        assert values[0] == pytest.approx(1000)
