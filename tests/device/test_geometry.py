"""Tests for NAND geometry and timing derivations."""

import pytest

from repro.device import KiB, MiB, NandGeometry, NandTiming


def test_default_geometry_capacity():
    g = NandGeometry()
    assert g.total_blocks == 4 * 8 * 512
    assert g.capacity_bytes == g.total_pages * g.page_size
    # Cosmos+-like: tens of GB at these defaults; sanity band only.
    assert g.capacity_bytes > 1 * 1024**3


def test_derived_bandwidths_positive_and_read_faster():
    g = NandGeometry()
    assert g.peak_program_bw > 0
    assert g.peak_read_bw > 0
    # tR << tPROG, so read bandwidth must exceed program bandwidth.
    assert g.peak_read_bw >= g.peak_program_bw


def test_program_bw_scales_with_channels():
    g1 = NandGeometry(channels=1)
    g4 = NandGeometry(channels=4)
    assert g4.peak_program_bw == pytest.approx(4 * g1.peak_program_bw)


def test_scaled_shrinks_capacity_not_parallelism():
    g = NandGeometry()
    s = g.scaled(1 / 64)
    assert s.channels == g.channels
    assert s.ways == g.ways
    assert s.capacity_bytes < g.capacity_bytes
    assert s.peak_program_bw == g.peak_program_bw


def test_scaled_never_zero_blocks():
    g = NandGeometry()
    s = g.scaled(1e-9)
    assert s.blocks_per_way >= 4


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        NandGeometry(channels=0)
    with pytest.raises(ValueError):
        NandGeometry(page_size=-1)
    with pytest.raises(ValueError):
        NandTiming(t_read=0)
    with pytest.raises(ValueError):
        NandGeometry().scaled(0)


def test_timing_defaults_sane():
    t = NandTiming()
    assert t.t_read < t.t_program < t.t_erase
    assert t.channel_bw >= 100 * MiB


def test_pages_per_way():
    g = NandGeometry(blocks_per_way=10, pages_per_block=20)
    assert g.pages_per_way == 200
