"""Tests for the disaggregated FTL."""

import pytest

from repro.device import Ftl, FtlError, NandGeometry


def tiny_geometry(**kw):
    defaults = dict(channels=1, ways=1, blocks_per_way=8, pages_per_block=4,
                    page_size=4096)
    defaults.update(kw)
    return NandGeometry(**defaults)


def test_regions_partition_logical_space():
    ftl = Ftl(tiny_geometry(), split_fraction=0.5)
    blk = ftl.region("block")
    kv = ftl.region("kv")
    assert blk.lpn_start == 0
    assert kv.lpn_start == blk.lpn_count == ftl.disaggregation_point
    assert blk.lpn_count + kv.lpn_count == ftl.total_logical_pages
    # logical space excludes over-provisioned blocks
    assert ftl.total_logical_pages < ftl.geometry.total_pages


def test_write_read_roundtrip_with_payload():
    ftl = Ftl(tiny_geometry())
    ftl.write(0, data=b"hello")
    assert ftl.read(0) == b"hello"


def test_overwrite_remaps_and_keeps_latest():
    ftl = Ftl(tiny_geometry())
    p1 = ftl.write(3, data=b"v1")
    p2 = ftl.write(3, data=b"v2")
    assert p1 != p2
    assert ftl.read(3) == b"v2"


def test_read_unmapped_raises():
    ftl = Ftl(tiny_geometry())
    with pytest.raises(FtlError):
        ftl.read(1)


def test_out_of_range_lpn_raises():
    ftl = Ftl(tiny_geometry())
    with pytest.raises(FtlError):
        ftl.write(10**9)


def test_trim_unmaps():
    ftl = Ftl(tiny_geometry())
    ftl.write(5, data=b"x")
    ftl.trim(5)
    assert not ftl.is_mapped(5)
    ftl.trim(5)  # idempotent


def test_regions_use_disjoint_physical_blocks():
    g = tiny_geometry()
    ftl = Ftl(g, split_fraction=0.5)
    kv_start = ftl.region("kv").lpn_start
    ppns_block = [ftl.write(i) for i in range(4)]
    ppns_kv = [ftl.write(kv_start + i) for i in range(4)]
    blocks_block = {p // g.pages_per_block for p in ppns_block}
    blocks_kv = {p // g.pages_per_block for p in ppns_kv}
    assert blocks_block.isdisjoint(blocks_kv)


def test_mapped_and_free_page_accounting():
    ftl = Ftl(tiny_geometry(), split_fraction=0.5)
    before = ftl.free_pages("block")
    ftl.write(0)
    ftl.write(1)
    assert ftl.mapped_pages("block") == 2
    assert ftl.free_pages("block") == before - 2


def test_gc_reclaims_overwritten_pages():
    # 1 channel/way, 8 blocks x 4 pages; split 0.5 -> 4 physical blocks for
    # the block region (minus OP). Overwrite one LPN repeatedly to force GC.
    ftl = Ftl(tiny_geometry(), split_fraction=0.5, op_fraction=0.25)
    writes = 0
    for _ in range(64):
        ftl.write(0, data=b"latest%d" % writes)
        writes += 1
    assert ftl.read(0) == b"latest%d" % (writes - 1)
    stats = ftl.gc_stats["block"]
    assert stats.invocations > 0
    assert stats.blocks_erased > 0


def test_gc_preserves_all_live_data():
    ftl = Ftl(tiny_geometry(), split_fraction=0.5, op_fraction=0.25)
    live = {}
    import random
    rng = random.Random(7)
    lpns = list(range(6))
    for i in range(200):
        lpn = rng.choice(lpns)
        data = f"{lpn}:{i}".encode()
        ftl.write(lpn, data=data)
        live[lpn] = data
    for lpn, data in live.items():
        assert ftl.read(lpn) == data


def test_full_region_sustains_overwrites_via_gc():
    # Fill every logical page of the kv region, then keep overwriting:
    # over-provisioning + GC must sustain the write stream indefinitely.
    ftl = Ftl(tiny_geometry(), split_fraction=0.5, op_fraction=0.25)
    kv = ftl.region("kv")
    for lpn in range(kv.lpn_start, kv.lpn_start + kv.lpn_count):
        ftl.write(lpn, data=b"init")
    for i in range(300):
        lpn = kv.lpn_start + (i % kv.lpn_count)
        ftl.write(lpn, data=b"gen%d" % i)
    # All logical pages still mapped and readable.
    assert ftl.mapped_pages("kv") == kv.lpn_count
    assert ftl.gc_stats["kv"].invocations > 0


def test_unknown_region_raises():
    ftl = Ftl(tiny_geometry())
    with pytest.raises(FtlError):
        ftl.region("nope")


def test_invalid_fractions():
    with pytest.raises(ValueError):
        Ftl(tiny_geometry(), split_fraction=0.0)
    with pytest.raises(ValueError):
        Ftl(tiny_geometry(), split_fraction=1.0)
    with pytest.raises(ValueError):
        Ftl(tiny_geometry(), op_fraction=0.9)
