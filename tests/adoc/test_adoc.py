"""Tests for the ADOC baseline: tuner policy and DB integration."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_device, small_options  # noqa: E402

from repro.adoc import AdocDb, AdocTunerConfig  # noqa: E402
from repro.device import CpuModel  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


def make_adoc(env, options=None, tuner=None):
    cpu = CpuModel(env, cores=8, name="host")
    dev = small_device(env)
    db = AdocDb(env, options or small_options(), dev, cpu, tuner_config=tuner)
    return db, cpu


def fill(env, db, n, vlen=64):
    def gen():
        for i in range(n):
            yield from db.put(encode_key(i), b"v" + b"x" * vlen)
    run(env, gen())


def test_adoc_is_a_functional_db():
    env = Environment()
    db, _ = make_adoc(env)
    fill(env, db, 500)
    assert run(env, db.get(encode_key(100))) is not None
    db.close()


def test_options_are_private_copy():
    env = Environment()
    opts = small_options()
    db, _ = make_adoc(env, opts)
    db.options.max_background_compactions = 5
    assert opts.max_background_compactions == 1
    db.close()


def test_tuner_escalates_under_pressure():
    env = Environment()
    tuner_cfg = AdocTunerConfig(interval=0.005, max_compaction_threads=4)
    db, _ = make_adoc(env, tuner=tuner_cfg)
    base_threads = db.tuner.base_threads
    fill(env, db, 6000)
    escalations = [a for a in db.tuner.actions if a.kind == "escalate"]
    assert escalations, "sustained pressure must trigger escalation"
    assert max(a.threads for a in escalations) > base_threads
    db.close()


def test_tuner_decays_after_calm():
    env = Environment()
    tuner_cfg = AdocTunerConfig(interval=0.005, calm_steps_to_decay=2)
    db, _ = make_adoc(env, tuner=tuner_cfg)
    fill(env, db, 6000)
    run(env, db.wait_for_quiesce())
    env.run(until=env.now + 0.2)  # calm period
    if any(a.kind == "escalate" for a in db.tuner.actions):
        assert any(a.kind == "decay" for a in db.tuner.actions)
        assert db.options.max_background_compactions == db.tuner.base_threads
        assert db.options.write_buffer_size == db.tuner.base_buffer
    db.close()


def test_tuner_respects_caps():
    env = Environment()
    tuner_cfg = AdocTunerConfig(interval=0.005, max_compaction_threads=3,
                                max_buffer_multiplier=2)
    db, _ = make_adoc(env, tuner=tuner_cfg)
    fill(env, db, 8000)
    assert db.options.max_background_compactions <= 3
    assert db.options.write_buffer_size <= db.tuner.base_buffer * 2
    db.close()


def test_tuner_charges_monitor_cpu():
    env = Environment()
    tuner_cfg = AdocTunerConfig(interval=0.01, monitor_cpu_cost=5e-6)
    db, cpu = make_adoc(env, tuner=tuner_cfg)
    env.run(until=0.5)
    assert cpu.busy_by_tag.get("adoc-tuner", 0) > 0
    db.close()


def test_adoc_still_uses_slowdowns():
    """The paper's point: ADOC falls back to slowdown as a last resort."""
    env = Environment()
    opts = small_options(
        slowdown_enabled=True,
        max_write_buffer_number=8,
        level0_file_num_compaction_trigger=2,
        level0_slowdown_writes_trigger=3,
        level0_stop_writes_trigger=6,
        delayed_write_rate=256 * 1024,
    )
    db, _ = make_adoc(env, opts, tuner=AdocTunerConfig(interval=0.005))
    fill(env, db, 6000)
    assert db.write_controller.slowdown_events >= 1
    db.close()


def test_more_threads_speed_up_backlog_drain():
    """Escalated thread count must let compactions run concurrently."""
    env = Environment()
    tuner_cfg = AdocTunerConfig(interval=0.002, max_compaction_threads=4)
    db, _ = make_adoc(env, tuner=tuner_cfg)
    fill(env, db, 8000)
    run(env, db.wait_for_quiesce())
    assert db.stats.compactions > 0
    db.close()
