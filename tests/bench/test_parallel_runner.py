"""Serial vs ``--jobs N`` identity for the cell fan-out.

Each experiment cell is a self-contained simulation (own Environment, own
seed), so running cells on worker processes must produce results identical
to a serial run: same keys in the same spec order, same metrics, same
series — only the wall-clock instrumentation in ``extra`` and the live
objects stripped at the process boundary may differ.
"""

import dataclasses

from repro.bench import RunSpec, mini_profile
from repro.bench.experiments.common import run_cells
from repro.bench.runner import (LIVE_EXTRA_KEYS, PERF_EXTRA_KEYS, RunOptions,
                                cell_trace_path)

SPECS = [
    RunSpec("rocksdb", "A", 1, slowdown=False, label="serial-vs-jobs/rocksdb"),
    RunSpec("kvaccel", "A", 1, rollback="disabled",
            label="serial-vs-jobs/kvaccel"),
]


def _tiny_profile():
    # Small enough that the pair of runs stays in test-suite budget.
    return dataclasses.replace(mini_profile(256), duration=0.6)


def _comparable(result) -> dict:
    doc = result.to_json()
    doc["extra_keys"] = sorted(
        k for k in result.extra
        if k not in PERF_EXTRA_KEYS and k not in LIVE_EXTRA_KEYS
        and k != "trace_path")
    return doc


def test_jobs2_results_identical_to_serial():
    profile = _tiny_profile()
    serial = run_cells(SPECS, profile, RunOptions(jobs=1))
    fanned = run_cells(SPECS, profile, RunOptions(jobs=2))
    assert list(serial) == list(fanned) == [s.display for s in SPECS]
    for label in serial:
        assert _comparable(serial[label]) == _comparable(fanned[label]), label
        # Determinism extends to the event count, not just the metrics.
        assert (serial[label].extra["events_processed"]
                == fanned[label].extra["events_processed"])


def test_workers_strip_live_objects():
    fanned = run_cells(SPECS, _tiny_profile(), RunOptions(jobs=2))
    for result in fanned.values():
        for key in LIVE_EXTRA_KEYS:
            assert key not in result.extra
        # ...but keep the perf instrumentation.
        for key in PERF_EXTRA_KEYS:
            assert key in result.extra


def test_jobs_cap_and_single_cell_stay_serial():
    # One cell with jobs=4 takes the serial path (nothing to fan out);
    # live objects are absent only because telemetry/trace are off.
    profile = _tiny_profile()
    out = run_cells([SPECS[0]], profile, RunOptions(jobs=4))
    assert list(out) == [SPECS[0].display]
    assert out[SPECS[0].display].write_ops > 0


def test_cell_trace_path_is_per_cell_and_filesystem_safe():
    assert cell_trace_path("out/trace.json", "fig11/kvaccel", 3) \
        == "out/trace.03.fig11_kvaccel.json"
    assert cell_trace_path("trace", "x", 1) == "trace.01.x.json"
    assert cell_trace_path("t.json", "cell one!", 1) == "t.01.cell_one_.json"
