"""Tests for the experiment harness: profiles, runner, report."""

import os

import pytest

from repro.bench import (
    RunSpec,
    ShapeCheck,
    mini_profile,
    paper_profile,
    run_workload,
    series_sparkline,
    shape_check,
    table,
)
from repro.bench.profiles import active_profile


class TestProfiles:
    def test_paper_constants(self):
        p = paper_profile()
        assert p.duration == 600.0
        assert p.sample_period == 1.0
        assert p.options.write_buffer_size == 128 * 1024 * 1024
        assert p.detector.period == 0.1
        assert p.scale == 1.0

    def test_mini_scales_capacities_not_rates(self):
        paper = paper_profile()
        mini = mini_profile(64)
        assert mini.duration == pytest.approx(600 / 64)
        assert mini.options.write_buffer_size == paper.options.write_buffer_size // 64
        # rates unscaled
        assert mini.options.delayed_write_rate == paper.options.delayed_write_rate
        assert mini.options.cpu.put == paper.options.cpu.put
        assert mini.ssd.peak_nand_bandwidth == paper.ssd.peak_nand_bandwidth
        # cadences scaled
        assert mini.detector.period == pytest.approx(0.1 / 64)
        assert mini.sample_period == pytest.approx(1 / 64)

    def test_mini_counts_unscaled(self):
        mini = mini_profile(64)
        paper = paper_profile()
        assert (mini.options.level0_slowdown_writes_trigger
                == paper.options.level0_slowdown_writes_trigger)
        assert (mini.options.max_write_buffer_number
                == paper.options.max_write_buffer_number)

    def test_with_options_copy(self):
        p = mini_profile(64)
        p2 = p.with_options(max_background_compactions=4)
        assert p2.options.max_background_compactions == 4
        assert p.options.max_background_compactions == 1
        with pytest.raises(AttributeError):
            p.with_options(not_a_field=1)

    def test_mini_validation(self):
        with pytest.raises(ValueError):
            mini_profile(0)

    def test_active_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "mini128")
        assert active_profile().name == "mini128"
        monkeypatch.setenv("REPRO_PROFILE", "paper")
        assert active_profile().name == "paper"
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.raises(ValueError):
            active_profile()
        monkeypatch.delenv("REPRO_PROFILE")
        assert active_profile().name == "mini64"


class TestRunSpec:
    def test_display_names(self):
        assert RunSpec("rocksdb", "A", 1).display == "RocksDB(1)"
        assert RunSpec("rocksdb", "A", 4, slowdown=False).display == \
            "RocksDB(4) w/o slowdown"
        assert RunSpec("kvaccel", "A", 2, rollback="lazy").display == \
            "KVAccel(2)-L"
        assert RunSpec("kvaccel", "A", 2, rollback="eager").display == \
            "KVAccel(2)-E"
        assert RunSpec("adoc", "B", 1, label="custom").display == "custom"

    def test_validation(self):
        with pytest.raises(ValueError):
            RunSpec("leveldb", "A")
        with pytest.raises(ValueError):
            RunSpec("rocksdb", "Z")


class TestRunnerSmoke:
    @pytest.fixture(scope="class")
    def tiny_profile(self):
        # very short run for harness plumbing tests
        import dataclasses
        p = mini_profile(512)
        return dataclasses.replace(p, duration=0.3)

    def test_rocksdb_run_produces_result(self, tiny_profile):
        r = run_workload(RunSpec("rocksdb", "A", 1), tiny_profile)
        assert r.write_ops > 0
        assert r.duration > 0
        assert len(r.times) == len(r.write_ops_series)
        assert r.write_latency is not None
        assert r.extra["spec"].system == "rocksdb"
        assert sum(r.write_ops_series) <= r.write_ops

    def test_kvaccel_run_extras(self, tiny_profile):
        r = run_workload(RunSpec("kvaccel", "A", 1, rollback="disabled"),
                         tiny_profile)
        assert "redirected_writes" in r.extra
        assert "rollbacks" in r.extra
        assert r.slowdown_events == 0

    def test_readwhilewriting_run(self, tiny_profile):
        r = run_workload(RunSpec("adoc", "B", 1), tiny_profile)
        assert r.write_ops > 0
        assert r.read_ops > 0

    def test_seekrandom_run(self, tiny_profile):
        r = run_workload(RunSpec("rocksdb", "D", 1), tiny_profile)
        assert r.read_ops > 0
        assert r.extra["seeks"] > 0

    def test_pcie_series_collected(self, tiny_profile):
        r = run_workload(RunSpec("rocksdb", "A", 1), tiny_profile)
        assert sum(r.pcie_series) > 0
        assert r.cpu_utilization > 0


class TestReport:
    def test_table_alignment(self):
        out = table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5  # title + header + separator + 2 rows

    def test_sparkline_bounds(self):
        out = series_sparkline([0, 1, 2, 3], width=4)
        assert "max=3" in out
        assert series_sparkline([], label="x") == "x (empty)"

    def test_sparkline_downsamples(self):
        out = series_sparkline(list(range(1000)), width=10)
        # 10 glyphs + suffix
        assert len(out.split("  ")[0]) == 10

    def test_shape_check_pass_fail(self):
        c = shape_check("t")
        c.expect("ok", True)
        c.expect_order("bigger", 10, 5)
        assert c.passed
        c.expect("nope", False, "detail")
        assert not c.passed
        with pytest.raises(AssertionError):
            c.assert_all()
        rendered = c.render()
        assert "[PASS] ok" in rendered
        assert "[FAIL] nope" in rendered

    def test_expect_order_slack(self):
        c = ShapeCheck("t")
        assert c.expect_order("near tie ok", 9, 10, slack=0.85)
        assert not c.expect_order("strict", 9, 10, slack=1.0)
