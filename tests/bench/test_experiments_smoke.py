"""Smoke tests for the experiment modules (tiny profile, plumbing only).

The benchmarks run these at reproduction scale and assert the paper's
shapes; here we only verify each module executes end-to-end and returns
the expected structure on a very small profile.
"""

import dataclasses
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from repro.bench.experiments import ALL  # noqa: E402
from repro.bench.profiles import mini_profile  # noqa: E402


@pytest.fixture(scope="module")
def tiny_profile():
    p = mini_profile(512)
    return dataclasses.replace(p, duration=0.4,
                               seekrandom_fill_bytes=2 * 1024 * 1024)


def test_registry_complete():
    assert set(ALL) == {"fig02", "fig03", "fig04", "fig05", "fig11", "fig12",
                        "fig13", "fig14", "tab05", "tab06", "sec6d", "cluster",
                        "failover"}
    for module in ALL.values():
        assert callable(module.run)
        assert module.__doc__


@pytest.mark.parametrize("name", ["tab06", "sec6d"])
def test_cheap_experiments_run(name, tiny_profile):
    out = ALL[name].run(profile=tiny_profile, quick=True)
    assert "check" in out and "paper" in out


def test_fig02_structure(tiny_profile):
    out = ALL["fig02"].run(profile=tiny_profile)
    assert set(out["results"]) == {
        "RocksDB(1) w/o slowdown", "ADOC(1) w/o slowdown",
        "RocksDB(1)", "ADOC(1)"}
    assert "zero_buckets" in out


def test_fig11_structure(tiny_profile):
    out = ALL["fig11"].run(profile=tiny_profile)
    assert set(out["floors"]) == {"RocksDB(1)", "ADOC(1)", "KVAccel(1)"}


def test_tab05_structure(tiny_profile):
    out = ALL["tab05"].run(profile=tiny_profile)
    assert set(out["throughput"]) == {"RocksDB", "ADOC", "KVAccel"}
    assert all(v > 0 for v in out["throughput"].values())
