"""Tests for the `python -m repro.bench` CLI."""

import pytest

from repro.bench.__main__ import main
from repro.bench.experiments import ALL


def test_listing(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    for name in ALL:
        assert name in out


def test_list_flag(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name, module in ALL.items():
        assert name in out
        # one-line description from the module docstring rides along
        first_line = (module.__doc__ or "").strip().splitlines()[0]
        assert first_line[:40] in out


def test_unknown_experiment(capsys):
    assert main(["nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown" in err
    assert "--list" in err


def test_bad_jobs_rejected():
    with pytest.raises(SystemExit):
        main(["tab06", "--jobs", "0"])


def test_single_experiment_quick(capsys, monkeypatch):
    # tab06 is the cheapest experiment (pure microbench)
    assert main(["tab06", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table VI" in out
    assert "all shape checks passed" in out


def test_failed_check_returns_nonzero(monkeypatch, capsys):
    class FakeCheck:
        passed = False

    fake = type(ALL["tab06"])("fake")
    fake.run = lambda quick=False, options=None: {"check": FakeCheck(),
                                                  "results": {}}
    monkeypatch.setitem(ALL, "fakeexp", fake)
    assert main(["fakeexp"]) == 1
    assert "FAILED" in capsys.readouterr().err
