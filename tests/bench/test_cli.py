"""Tests for the `python -m repro.bench` CLI."""

import pytest

from repro.bench.__main__ import main
from repro.bench.experiments import ALL


def test_listing(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    for name in ALL:
        assert name in out


def test_unknown_experiment(capsys):
    assert main(["nope"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_single_experiment_quick(capsys, monkeypatch):
    # tab06 is the cheapest experiment (pure microbench)
    assert main(["tab06", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table VI" in out
    assert "all shape checks passed" in out


def test_failed_check_returns_nonzero(monkeypatch, capsys):
    class FakeCheck:
        passed = False

    fake = type(ALL["tab06"])("fake")
    fake.run = lambda quick=False: {"check": FakeCheck()}
    monkeypatch.setitem(ALL, "fakeexp", fake)
    assert main(["fakeexp"]) == 1
    assert "FAILED" in capsys.readouterr().err
