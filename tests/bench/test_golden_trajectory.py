"""Pin the exact simulated trajectory of one fig11 cell.

The DES kernel's fast paths (timeout pooling, the inline process-resume
loop in ``Environment.run``) are allowed to change how *fast* the
simulator runs, never *what* it computes: same-timestamp scheduling order
and interrupt priority are part of the determinism contract (MODEL.md).
This test locks one full KVAccel cell — every sampled series, latency
percentile, and stall interval — against a JSON snapshot taken before the
fast paths landed.  If it fails, a kernel change altered the trajectory,
not just the wall clock; regenerate only when a *model* change is the
intended cause:

    PYTHONPATH=src python -c "
    import json
    from repro.bench import RunSpec, mini_profile, run_workload
    r = run_workload(RunSpec('kvaccel', 'A', 1, rollback='disabled'),
                     mini_profile(256))
    with open('tests/data/golden_fig11_cell.json', 'w') as fh:
        json.dump(r.to_json(), fh, indent=2, sort_keys=True)
        fh.write('\\n')"
"""

import json
from pathlib import Path

from repro.bench import RunSpec, mini_profile, run_workload
from repro.obs import Journal, write_divergence_artifact

DATA = Path(__file__).resolve().parents[1] / "data"
GOLDEN = DATA / "golden_fig11_cell.json"
GOLDEN_DIGESTS = DATA / "golden_fig11_journal_digests.jsonl"


def _check_fields(produced: dict, golden: dict, journal=None) -> None:
    assert set(produced) == set(golden)
    for field in golden:
        if produced[field] != golden[field]:
            # Point the red check at the evidence: emit the mismatch (and
            # the flight recorder, when one ran) as a divergence artifact.
            # No-op unless REPRO_DIVERGENCE_DIR is set.
            artifact = write_divergence_artifact(
                f"golden_fig11_{field}",
                {"divergent": True, "field": field,
                 "produced": produced[field], "golden": golden[field]},
                journal=journal)
            raise AssertionError(
                f"trajectory diverged in field {field!r} — a kernel or "
                f"model change altered simulation results, not just speed"
                + (f" (divergence artifact: {artifact})" if artifact
                   else ""))


def test_fig11_cell_matches_golden_trajectory():
    result = run_workload(RunSpec("kvaccel", "A", 1, rollback="disabled"),
                          mini_profile(256))
    produced = json.loads(json.dumps(result.to_json()))
    _check_fields(produced, json.loads(GOLDEN.read_text()))


def test_fig11_cell_matches_golden_with_calendar_queue_forced(monkeypatch):
    """Queue-discipline independence: REPRO_SCHED=cal routes every push
    through the calendar queue's buckets/insort machinery from the first
    event, and the trajectory must stay bit-identical — the scheduler is
    a different *data structure*, never a different *order*.  (Auto mode
    rarely upgrades in a mini cell — its pending population sits well
    below the crossover — so this forced run is what actually exercises
    the calendar path against the golden.)"""
    monkeypatch.setenv("REPRO_SCHED", "cal")
    result = run_workload(RunSpec("kvaccel", "A", 1, rollback="disabled"),
                          mini_profile(256))
    produced = json.loads(json.dumps(result.to_json()))
    _check_fields(produced, json.loads(GOLDEN.read_text()))


def test_fig11_journal_enabled_run_matches_golden_trajectory():
    """The flight recorder is purely passive: a journal-ENABLED run must
    reproduce the pinned golden bit-identically, and its per-layer digest
    checkpoint stream must match the pinned digest golden record for
    record.  Regenerate the digest pin together with the trajectory pin:

        PYTHONPATH=src python -c "
        import json
        from repro.bench import RunSpec, mini_profile, run_workload
        from repro.obs import Journal
        p = mini_profile(256)
        r = run_workload(RunSpec('kvaccel', 'A', 1, rollback='disabled'),
                         p, journal=Journal(period=p.sample_period))
        with open('tests/data/golden_fig11_journal_digests.jsonl', 'w') as fh:
            for rec in r.extra['journal'].records:
                if rec[0] == 'digest':
                    fh.write(json.dumps(list(rec),
                                        separators=(',', ':')) + '\\n')"
    """
    profile = mini_profile(256)
    result = run_workload(RunSpec("kvaccel", "A", 1, rollback="disabled"),
                          profile,
                          journal=Journal(period=profile.sample_period))
    journal = result.extra["journal"]
    produced = json.loads(json.dumps(result.to_json()))
    _check_fields(produced, json.loads(GOLDEN.read_text()), journal=journal)

    produced_digests = [list(rec) for rec in journal.records
                        if rec[0] == "digest"]
    golden_digests = [json.loads(line) for line in
                      GOLDEN_DIGESTS.read_text().splitlines() if line]
    assert len(produced_digests) == len(golden_digests), (
        f"digest checkpoint count changed: {len(produced_digests)} vs "
        f"golden {len(golden_digests)}")
    for i, (got, want) in enumerate(zip(produced_digests, golden_digests)):
        if got != want:
            artifact = write_divergence_artifact(
                "golden_fig11_digest_stream",
                {"divergent": True, "ordinal": i,
                 "produced": got, "golden": want},
                journal=journal)
            raise AssertionError(
                f"digest stream diverged at checkpoint record #{i}: "
                f"layer {want[3]!r} at t={want[2]} — got {got}"
                + (f" (divergence artifact: {artifact})" if artifact
                   else ""))
