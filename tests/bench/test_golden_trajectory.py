"""Pin the exact simulated trajectory of one fig11 cell.

The DES kernel's fast paths (timeout pooling, the inline process-resume
loop in ``Environment.run``) are allowed to change how *fast* the
simulator runs, never *what* it computes: same-timestamp scheduling order
and interrupt priority are part of the determinism contract (MODEL.md).
This test locks one full KVAccel cell — every sampled series, latency
percentile, and stall interval — against a JSON snapshot taken before the
fast paths landed.  If it fails, a kernel change altered the trajectory,
not just the wall clock; regenerate only when a *model* change is the
intended cause:

    PYTHONPATH=src python -c "
    import json
    from repro.bench import RunSpec, mini_profile, run_workload
    r = run_workload(RunSpec('kvaccel', 'A', 1, rollback='disabled'),
                     mini_profile(256))
    with open('tests/data/golden_fig11_cell.json', 'w') as fh:
        json.dump(r.to_json(), fh, indent=2, sort_keys=True)
        fh.write('\\n')"
"""

import json
from pathlib import Path

from repro.bench import RunSpec, mini_profile, run_workload

GOLDEN = Path(__file__).resolve().parents[1] / "data" / "golden_fig11_cell.json"


def test_fig11_cell_matches_golden_trajectory():
    result = run_workload(RunSpec("kvaccel", "A", 1, rollback="disabled"),
                          mini_profile(256))
    produced = json.loads(json.dumps(result.to_json()))
    golden = json.loads(GOLDEN.read_text())
    assert set(produced) == set(golden)
    for field in golden:
        assert produced[field] == golden[field], (
            f"trajectory diverged in field {field!r} — a kernel or model "
            f"change altered simulation results, not just speed")
