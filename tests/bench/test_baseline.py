"""Bench baseline store + compare: schema validation, build/write round
trip, tolerance-band judgments, and the deterministic self-compare."""

import copy
import json

import pytest

from repro.bench.baseline import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    build_baseline,
    cell_metrics,
    default_baseline_path,
    load_schema,
    validate_schema,
    write_baseline,
)
from repro.bench.profiles import mini_profile
from repro.bench.runner import RunSpec, run_workload
from repro.obs.compare import (
    MetricSpec,
    compare_baselines,
    load_baseline,
    regression_count,
)

PROFILE = mini_profile(256)


@pytest.fixture(scope="module")
def baseline_doc():
    """A real two-cell baseline (the fig12-style flow, one workload)."""
    results = {}
    for spec in [RunSpec("rocksdb", "A", 1, slowdown=False),
                 RunSpec("kvaccel", "A", 1, rollback="disabled")]:
        results[spec.display] = run_workload(spec, PROFILE, telemetry=True)
    return build_baseline("figtest", PROFILE.name, results,
                          checks_passed=True, quick=True)


def test_baseline_validates_against_schema(baseline_doc):
    assert validate_schema(baseline_doc, load_schema()) == []
    assert baseline_doc["schema"] == SCHEMA_NAME
    assert baseline_doc["version"] == SCHEMA_VERSION
    assert len(baseline_doc["cells"]) == 2


def test_cell_metrics_shape(baseline_doc):
    for label, cell in baseline_doc["cells"].items():
        assert cell["duration"] > 0
        assert cell["write_throughput_ops"] > 0
        assert isinstance(cell["health"], dict)
    stall_cell = baseline_doc["cells"]["RocksDB(1) w/o slowdown"]
    clean_cell = baseline_doc["cells"]["KVAccel(1)"]
    assert stall_cell["health"].get("stall_storm", 0) >= 1
    assert clean_cell["health"].get("stall_storm", 0) == 0


def test_schema_rejects_malformed(baseline_doc):
    schema = load_schema()
    bad = copy.deepcopy(baseline_doc)
    bad["schema"] = "something-else"
    assert any("const" in e for e in validate_schema(bad, schema))
    bad = copy.deepcopy(baseline_doc)
    del next(iter(bad["cells"].values()))["write_throughput_ops"]
    assert any("write_throughput_ops" in e
               for e in validate_schema(bad, schema))
    bad = copy.deepcopy(baseline_doc)
    next(iter(bad["cells"].values()))["bogus_metric"] = 1.0
    assert any("bogus_metric" in e for e in validate_schema(bad, schema))
    bad = copy.deepcopy(baseline_doc)
    bad["cells"]["x"] = {"write_throughput_ops": "fast"}
    assert validate_schema(bad, schema)


def test_write_and_load_round_trip(baseline_doc, tmp_path):
    path = write_baseline(baseline_doc, tmp_path / "BENCH_figtest.json")
    doc = load_baseline(str(path))
    assert doc == json.loads(json.dumps(baseline_doc))
    with pytest.raises(ValueError, match="does not match"):
        write_baseline({"schema": "nope"}, tmp_path / "bad.json")


def test_default_baseline_path(tmp_path):
    assert default_baseline_path("fig12").name == "BENCH_fig12.json"
    assert default_baseline_path("fig12", tmp_path).parent == tmp_path


def test_self_compare_is_zero_diff(baseline_doc):
    findings = compare_baselines(baseline_doc, baseline_doc)
    assert findings == []
    assert regression_count(findings) == 0


def test_compare_flags_regression(baseline_doc):
    worse = copy.deepcopy(baseline_doc)
    cell = worse["cells"]["KVAccel(1)"]
    cell["write_throughput_ops"] *= 0.5          # -50% >> 10% band
    findings = compare_baselines(baseline_doc, worse)
    assert regression_count(findings) == 1
    f = findings[0]
    assert (f.cell, f.metric, f.kind) == \
        ("KVAccel(1)", "write_throughput_ops", "regression")
    # The reverse direction is an improvement, not a regression.
    findings = compare_baselines(worse, baseline_doc)
    assert regression_count(findings) == 0
    assert any(f.kind == "improvement" for f in findings)


def test_compare_within_band_is_silent(baseline_doc):
    near = copy.deepcopy(baseline_doc)
    cell = near["cells"]["KVAccel(1)"]
    cell["write_throughput_ops"] *= 1.05         # within the 10% band
    assert compare_baselines(baseline_doc, near) == []


def test_compare_structural_findings(baseline_doc):
    # A disappearing cell is regression-counted; a new cell is not.
    missing = copy.deepcopy(baseline_doc)
    del missing["cells"]["KVAccel(1)"]
    findings = compare_baselines(baseline_doc, missing)
    assert regression_count(findings) == 1
    findings = compare_baselines(missing, baseline_doc)
    assert regression_count(findings) == 0
    assert any("new cell" in f.note for f in findings)
    # A health rule flipping zero -> nonzero is structural + counted.
    sick = copy.deepcopy(baseline_doc)
    sick["cells"]["KVAccel(1)"]["health"]["stall_storm"] = 3
    findings = compare_baselines(baseline_doc, sick)
    assert any(f.metric == "health.stall_storm" for f in findings)
    assert regression_count(findings) >= 1


def test_compare_rejects_non_baseline():
    with pytest.raises(ValueError, match="not a repro-bench-baseline"):
        compare_baselines({"schema": "x"}, {"schema": "x"})


def test_metric_spec_judgments():
    up = MetricSpec("x", higher_is_better=True, tolerance=0.10,
                    abs_slack=1.0)
    assert up.judge(100.0, 100.0) is None
    assert up.judge(100.0, 91.0) is None          # inside the band
    assert up.judge(100.0, 85.0) == "regression"
    assert up.judge(100.0, 120.0) == "improvement"
    assert up.judge(0.0, 0.5) is None             # abs_slack floor
    down = MetricSpec("y", higher_is_better=False, tolerance=0.10)
    assert down.judge(100.0, 120.0) == "regression"
    assert down.judge(100.0, 80.0) == "improvement"
