"""Tests for merging iterators."""

from repro.lsm import k_way_merge, merging_iterator
from repro.types import KIND_DELETE, encode_key, make_entry


def e(k, seq, v=b"v"):
    return make_entry(encode_key(k), seq, v)


def tomb(k, seq):
    return make_entry(encode_key(k), seq, None, kind=KIND_DELETE)


def test_k_way_merge_orders_by_key_then_seq_desc():
    a = [e(1, 5), e(3, 5)]
    b = [e(1, 9), e(2, 1)]
    out = list(k_way_merge([a, b]))
    assert [(x[0], x[1]) for x in out] == [
        (encode_key(1), 9), (encode_key(1), 5),
        (encode_key(2), 1), (encode_key(3), 5),
    ]


def test_merging_dedups_newest_wins():
    a = [e(1, 5, b"old"), e(2, 7, b"keep")]
    b = [e(1, 9, b"new")]
    out = list(merging_iterator([a, b]))
    assert [(x[0], x[3]) for x in out] == [
        (encode_key(1), b"new"), (encode_key(2), b"keep"),
    ]


def test_tombstones_hidden_by_default():
    a = [e(1, 5, b"dead-later")]
    b = [tomb(1, 9), e(2, 2, b"live")]
    out = list(merging_iterator([a, b]))
    assert [x[0] for x in out] == [encode_key(2)]


def test_tombstones_included_when_asked():
    b = [tomb(1, 9), e(2, 2, b"live")]
    out = list(merging_iterator([b], include_tombstones=True))
    assert len(out) == 2
    assert out[0][2] == KIND_DELETE


def test_tombstone_shadowed_by_newer_put():
    a = [tomb(1, 5)]
    b = [e(1, 9, b"reborn")]
    out = list(merging_iterator([a, b]))
    assert [(x[0], x[3]) for x in out] == [(encode_key(1), b"reborn")]


def test_empty_sources():
    assert list(merging_iterator([])) == []
    assert list(merging_iterator([[], []])) == []


def test_many_sources_against_reference_model():
    import random
    rng = random.Random(11)
    sources = []
    model = {}
    seq = 0
    for _ in range(8):
        keys = sorted(rng.sample(range(60), rng.randrange(1, 25)))
        src = []
        for k in keys:
            seq += 1
            val = bytes([seq % 251])
            src.append(e(k, seq, val))
        sources.append(src)
    for src in sources:
        for entry in src:
            cur = model.get(entry[0])
            if cur is None or entry[1] > cur[1]:
                model[entry[0]] = entry
    expected = [model[k] for k in sorted(model)]
    got = list(merging_iterator(sources))
    assert got == expected
