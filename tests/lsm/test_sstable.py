"""Tests for SSTable construction, probing, iteration, serialization."""

import pytest

from repro.lsm import SSTable
from repro.types import encode_key, make_entry


def build(n=100, block_size=256, vlen=16, start=0, step=1):
    entries = [make_entry(encode_key(start + i * step), i + 1, b"v" * vlen)
               for i in range(n)]
    return SSTable(1, entries, block_size=block_size)


def test_empty_rejected():
    with pytest.raises(ValueError):
        SSTable(1, [])


def test_unsorted_rejected():
    es = [make_entry(encode_key(2), 1, b"v"), make_entry(encode_key(1), 2, b"v")]
    with pytest.raises(ValueError):
        SSTable(1, es)


def test_duplicate_keys_rejected():
    es = [make_entry(encode_key(1), 1, b"v"), make_entry(encode_key(1), 2, b"v")]
    with pytest.raises(ValueError):
        SSTable(1, es)


def test_bounds_and_counts():
    t = build(50)
    assert t.smallest == encode_key(0)
    assert t.largest == encode_key(49)
    assert t.num_entries == 50
    assert t.num_blocks > 1
    assert t.data_bytes == sum(len(encode_key(0)) + 16 + 8 for _ in range(50))
    assert t.file_bytes > t.data_bytes


def test_probe_hit_charges_one_block():
    t = build(100, block_size=256)
    r = t.probe(encode_key(42))
    assert r.entry[0] == encode_key(42)
    assert 0 < r.bytes_read <= 2 * 256  # one block (may exceed budget by 1 entry)


def test_probe_outside_range_free():
    t = build(10, start=10)
    assert t.probe(encode_key(5)).bytes_read == 0
    assert t.probe(encode_key(99)).bytes_read == 0


def test_probe_bloom_negative_free():
    t = build(100, step=2)  # even keys only
    # find an in-range odd key the bloom rejects (nearly all of them)
    rejected = [k for k in range(1, 199, 2)
                if t.probe(encode_key(k)).bloom_negative]
    assert rejected, "bloom should reject most absent keys"
    assert all(t.probe(encode_key(k)).bytes_read == 0 for k in rejected)


def test_probe_miss_in_range_after_bloom_fp():
    t = build(100, step=2)
    misses = [t.probe(encode_key(k)) for k in range(1, 199, 2)]
    assert all(m.entry is None for m in misses)


def test_every_key_probes_correctly():
    t = build(200, block_size=128)
    for i in range(200):
        r = t.probe(encode_key(i))
        assert r.entry is not None and r.entry[0] == encode_key(i)


def test_overlaps():
    t = build(10, start=10)  # keys 10..19
    assert t.overlaps(encode_key(0), encode_key(10))
    assert t.overlaps(encode_key(19), encode_key(30))
    assert t.overlaps(encode_key(12), encode_key(15))
    assert not t.overlaps(encode_key(0), encode_key(9))
    assert not t.overlaps(encode_key(20), encode_key(30))


def test_iter_from():
    t = build(10, step=2)  # 0,2,...,18
    keys = [e[0] for e in t.iter_from(encode_key(5))]
    assert keys == [encode_key(k) for k in (6, 8, 10, 12, 14, 16, 18)]
    assert [e[0] for e in t.iter_from()] == [encode_key(2 * i) for i in range(10)]


def test_lower_bound():
    t = build(5, step=10)  # 0, 10, 20, 30, 40
    assert t.lower_bound(encode_key(0)) == 0
    assert t.lower_bound(encode_key(11)) == 2
    assert t.lower_bound(encode_key(40)) == 4
    assert t.lower_bound(encode_key(41)) == 5


def test_block_of_entry_consistent():
    t = build(100, block_size=128)
    for idx in range(100):
        b = t.block_of_entry(idx)
        assert 0 <= b < t.num_blocks
    # block starts map back to themselves
    total = sum(t.block_bytes(b) for b in range(t.num_blocks))
    assert total == t.data_bytes


def test_serialization_roundtrip():
    t = build(30, vlen=8)
    data = t.to_bytes()
    t2 = SSTable.from_bytes(2, data, block_size=256)
    assert t2.num_entries == 30
    assert [e[0] for e in t2.entries] == [e[0] for e in t.entries]
    r = t2.probe(encode_key(7))
    assert r.entry[3] == b"v" * 8
