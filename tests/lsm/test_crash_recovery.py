"""Tests for host-LSM crash recovery (WAL replay + MANIFEST reconstruction)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_db, small_options  # noqa: E402

from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


def fill(env, db, n, start=0, vlen=64, prefix=b"v"):
    def gen():
        for i in range(start, start + n):
            yield from db.put(encode_key(i), prefix + b"-%d" % i + b"x" * vlen)
    run(env, gen())


def test_recovery_restores_flushed_and_durable_wal_data():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 1500)
    run(env, db.wait_for_quiesce())
    run(env, db.wal.sync())  # make the tail durable: clean-ish shutdown
    info = run(env, db.crash_and_recover())
    assert info["manifest_edits"] > 0
    run(env, db.wait_for_quiesce())
    # everything was flushed or WAL-group-committed before the crash
    for k in (0, 700, 1499):
        assert run(env, db.get(encode_key(k))) is not None, k


def test_unsynced_tail_is_lost_durable_groups_survive():
    env = Environment()
    # Huge group-commit budget: nothing reaches the device until sync.
    db, _, _ = small_db(env, small_options(
        write_buffer_size=1 << 20,          # no flush either
        wal_group_commit_bytes=1 << 30))
    fill(env, db, 100)
    assert db.wal.durable_bytes == 0
    info = run(env, db.crash_and_recover())
    assert info["lost_buffered_records"] == 100
    assert info["replayed_records"] == 0
    for k in (0, 50, 99):
        assert run(env, db.get(encode_key(k))) is None, k


def test_wal_replay_restores_unflushed_memtable():
    env = Environment()
    # Tiny WAL groups (everything durable), huge memtable (nothing flushed).
    db, _, _ = small_db(env, small_options(
        write_buffer_size=1 << 24,
        wal_group_commit_bytes=128))
    fill(env, db, 200)
    assert db.stats.flushes == 0
    info = run(env, db.crash_and_recover())
    assert info["replayed_records"] >= 199  # at most the last record buffered
    for k in (0, 100, 198):
        assert run(env, db.get(encode_key(k))) is not None, k


def test_recovery_preserves_newest_versions():
    env = Environment()
    db, _, _ = small_db(env, small_options(wal_group_commit_bytes=128))
    fill(env, db, 400)
    fill(env, db, 400, prefix=b"w")  # overwrite all
    run(env, db.wal.sync())
    run(env, db.crash_and_recover())
    run(env, db.wait_for_quiesce())
    for k in (0, 200, 399):
        got = run(env, db.get(encode_key(k)))
        assert got is not None and got.startswith(b"w-"), k


def test_crash_mid_compaction_discards_partial_outputs():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 1500)  # enough to keep compactions busy

    def crash_mid_flight():
        # wait until a compaction is actually in flight
        for _ in range(20_000):
            if db._active_compactions > 0:
                break
            yield env.timeout(1e-4)
        yield from db.wal.sync()
        info = yield from db.crash_and_recover()
        return info

    info = run(env, crash_mid_flight())
    run(env, db.wait_for_quiesce())
    # version state consistent: every referenced file exists, no orphans
    live = {db._sst_name(f.number)
            for level in db.versions.current.levels for f in level}
    on_disk = {n for n in db.fs.list_files() if ".sst-" in n}
    assert live == on_disk
    # no file left pinned
    assert all(not f.being_compacted
               for level in db.versions.current.levels for f in level)
    for k in (0, 700, 1499):
        assert run(env, db.get(encode_key(k))) is not None, k


def test_background_work_resumes_after_recovery():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 800)
    run(env, db.crash_and_recover())
    flushes_before = db.stats.flushes
    fill(env, db, 1200, start=800)
    run(env, db.wait_for_quiesce())
    assert db.stats.flushes > flushes_before
    assert run(env, db.get(encode_key(1500))) is not None


def test_repeated_crashes():
    env = Environment()
    db, _, _ = small_db(env, small_options(wal_group_commit_bytes=128))
    for round_ in range(3):
        fill(env, db, 200, start=round_ * 200)
        run(env, db.wal.sync())
        run(env, db.crash_and_recover())
    run(env, db.wait_for_quiesce())
    for k in (0, 250, 599):
        assert run(env, db.get(encode_key(k))) is not None, k


def test_recovery_without_wal_rejected():
    env = Environment()
    db, _, _ = small_db(env, small_options(wal_enabled=False))
    with pytest.raises(RuntimeError):
        run(env, db.crash_and_recover())


def test_manifest_replay_detects_consistency():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 600)
    run(env, db.wait_for_quiesce())
    # journal replay reproduces the live version exactly
    replayed = db.versions.rebuild_from_journal()
    want = [[f.number for f in lvl] for lvl in db.versions.current.levels]
    got = [[f.number for f in lvl] for lvl in replayed.levels]
    assert got == want
