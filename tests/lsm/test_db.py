"""Integration tests for DbImpl: write path, flush, compaction, reads, scans."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_db, small_options  # noqa: E402

from repro.lsm import WriteState  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


def fill(env, db, n, vlen=64, start=0, prefix=b"v"):
    def gen():
        for i in range(start, start + n):
            yield from db.put(encode_key(i), prefix + b"-%d" % i + b"x" * vlen)
    run(env, gen())


def test_put_get_roundtrip():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 10)
    assert run(env, db.get(encode_key(3))) == b"v-3" + b"x" * 64
    assert run(env, db.get(encode_key(99))) is None


def test_flush_triggered_by_memtable_size():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 400)  # 400 * ~75B > 16 KiB several times over
    run(env, db.wait_for_quiesce())
    assert db.stats.flushes >= 1
    assert db.versions.current.total_files() >= 1
    # all data still visible after flushes
    for k in (0, 100, 399):
        assert run(env, db.get(encode_key(k))) is not None


def test_compaction_reduces_l0():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 2000)
    run(env, db.wait_for_quiesce())
    assert db.stats.compactions >= 1
    v = db.versions.current
    assert v.l0_count < db.options.level0_slowdown_writes_trigger
    # data survived compaction
    for k in (0, 777, 1500, 1999):
        got = run(env, db.get(encode_key(k)))
        assert got is not None, k


def test_overwrite_returns_latest():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 500)
    fill(env, db, 500, prefix=b"w")  # overwrite same keys
    run(env, db.wait_for_quiesce())
    for k in (0, 250, 499):
        got = run(env, db.get(encode_key(k)))
        assert got.startswith(b"w-"), k


def test_delete_hides_key_across_flush():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 300)
    run(env, db.delete(encode_key(5)))
    run(env, db.flush_all())
    run(env, db.wait_for_quiesce())
    assert run(env, db.get(encode_key(5))) is None
    assert run(env, db.get(encode_key(6))) is not None


def test_scan_returns_sorted_latest():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 1000)
    run(env, db.delete(encode_key(12)))
    fill(env, db, 1, start=15, prefix=b"w")
    out = run(env, db.scan(encode_key(10), 10))
    keys = [k for k, _ in out]
    assert keys == sorted(keys)
    assert encode_key(12) not in keys
    assert keys[0] == encode_key(10)
    d = dict(out)
    assert d[encode_key(15)].startswith(b"w-")


def test_scan_spans_memtable_and_ssts():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 600)             # mostly flushed
    fill(env, db, 5, start=600)    # still in memtable
    out = run(env, db.scan(encode_key(595), 10))
    assert [k for k, _ in out] == [encode_key(k) for k in range(595, 605)]


def test_scan_charges_device_reads():
    env = Environment()
    db, dev, _ = small_db(env, page_cache_bytes=0)
    fill(env, db, 2000)
    run(env, db.wait_for_quiesce())
    before = dev.bytes_read
    run(env, db.scan(encode_key(0), 500))
    assert dev.bytes_read > before


def test_get_uses_bloom_to_skip_files():
    env = Environment()
    db, dev, _ = small_db(env, page_cache_bytes=0)
    fill(env, db, 1000)
    run(env, db.wait_for_quiesce())
    before = dev.bytes_read
    for k in range(20_000, 20_050):
        assert run(env, db.get(encode_key(k))) is None
    # misses are nearly free thanks to bloom + key-range checks
    assert dev.bytes_read - before < 16 * 1024


def test_write_batch_counts_every_op():
    env = Environment()
    db, _, _ = small_db(env)
    pairs = [(encode_key(i), b"b" * 32) for i in range(50)]
    run(env, db.put_batch(pairs))
    assert db.stats.user_writes == 50
    assert run(env, db.get(encode_key(49))) == b"b" * 32


def test_wal_written_on_put():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 100)
    assert db.wal.appended_bytes > 0


def test_wal_disabled_option():
    env = Environment()
    db, _, _ = small_db(env, small_options(wal_enabled=False))
    fill(env, db, 50)
    assert db.wal is None
    assert run(env, db.get(encode_key(1))) is not None


def test_stall_books_record_under_pressure():
    env = Environment()
    # Tiny stop triggers + slow device => guaranteed stalls.
    opts = small_options(level0_stop_writes_trigger=3,
                         level0_slowdown_writes_trigger=2,
                         slowdown_enabled=False)
    db, _, _ = small_db(env, opts)
    fill(env, db, 4000)
    wc = db.write_controller
    assert wc.stall_events > 0
    assert wc.total_stall_time > 0
    assert wc.stall_intervals


def test_slowdown_reduces_stalls_but_throttles():
    # L0-pressure regime: plenty of memtable headroom, tight L0 triggers,
    # so stalls are the kind the slowdown mechanism anticipates.
    def l0_opts(sl):
        return small_options(
            slowdown_enabled=sl,
            max_write_buffer_number=8,
            level0_file_num_compaction_trigger=2,
            level0_slowdown_writes_trigger=3,
            level0_stop_writes_trigger=5,
            delayed_write_rate=128 * 1024,
        )

    env1 = Environment()
    db1, _, _ = small_db(env1, l0_opts(False))
    fill(env1, db1, 3000)
    t_nosl = env1.now
    l0_stalls_nosl = db1.write_controller.stall_events

    env2 = Environment()
    db2, _, _ = small_db(env2, l0_opts(True))
    fill(env2, db2, 3000)
    t_sl = env2.now
    assert db2.write_controller.slowdown_events >= 1
    # slowdown trades stalls for throughput: fewer stalls, slower run
    assert db2.write_controller.stall_events <= l0_stalls_nosl
    assert t_sl >= t_nosl


def test_property_snapshot_shape():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 200)
    snap = db.property_snapshot()
    for key in ("seq", "l0_files", "levels", "pending_compaction_bytes",
                "write_state", "flushes"):
        assert key in snap
    assert snap["seq"] == 200


def test_sequence_numbers_monotonic_and_external():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 10)
    assert db.property_snapshot()["seq"] == 10
    db.note_external_seq(1000)
    fill(env, db, 1, start=50)
    assert db.property_snapshot()["seq"] == 1001


def test_write_entries_preserves_seq():
    env = Environment()
    db, _, _ = small_db(env)
    from repro.types import make_entry
    entries = [make_entry(encode_key(1), 500, b"low"),
               make_entry(encode_key(2), 700, b"high")]
    run(env, db.write_entries(entries))
    # a later regular put gets seq > 700
    fill(env, db, 1, start=3)
    assert db.property_snapshot()["seq"] == 701


def test_close_stops_background_workers():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 100)
    db.close()
    env.run(until=env.now + 1)
    with pytest.raises(RuntimeError):
        run(env, db.put(encode_key(1), b"x"))


def test_compaction_drops_tombstones_eventually():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 500)
    for k in range(0, 100):
        run(env, db.delete(encode_key(k)))
    run(env, db.flush_all())
    run(env, db.wait_for_quiesce())
    for k in (0, 50, 99):
        assert run(env, db.get(encode_key(k))) is None
    assert run(env, db.get(encode_key(200))) is not None


def test_latency_hooks_record():
    env = Environment()
    db, _, _ = small_db(env)

    class Hist:
        def __init__(self):
            self.values = []

        def record(self, us, count=1):
            self.values.extend([us] * count)

    db.stats.write_latencies = Hist()
    db.stats.read_latencies = Hist()
    fill(env, db, 20)
    run(env, db.get(encode_key(1)))
    assert len(db.stats.write_latencies.values) == 20
    assert len(db.stats.read_latencies.values) == 1
    assert all(v >= 0 for v in db.stats.write_latencies.values)
