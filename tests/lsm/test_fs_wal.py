"""Tests for the file layer, page cache, and WAL."""

import pytest

from repro.device import BlockDevice, Ftl, MiB, NandArray, NandGeometry, PcieLink
from repro.lsm import FileSystem, FsError, PageCache, Wal
from repro.sim import Environment


def make_fs(env, page_cache=None):
    g = NandGeometry(channels=1, ways=1, blocks_per_way=128, pages_per_block=32,
                     page_size=4096)
    ftl = Ftl(g, split_fraction=0.75)
    nand = NandArray(env, g, peak_bandwidth=100 * MiB)
    pcie = PcieLink(env, bandwidth=400 * MiB)
    dev = BlockDevice(env, ftl, nand, pcie)
    return FileSystem(dev, page_cache=page_cache), dev


def run(env, gen):
    return env.run(until=env.process(gen))


class TestFileSystem:
    def test_create_open_exists(self):
        env = Environment()
        fs, _ = make_fs(env)
        f = fs.create("a")
        assert fs.open("a") is f
        assert fs.exists("a")
        assert not fs.exists("b")

    def test_duplicate_create_raises(self):
        env = Environment()
        fs, _ = make_fs(env)
        fs.create("a")
        with pytest.raises(FsError):
            fs.create("a")

    def test_open_missing_raises(self):
        env = Environment()
        fs, _ = make_fs(env)
        with pytest.raises(FsError):
            fs.open("missing")

    def test_append_grows_and_charges_device(self):
        env = Environment()
        fs, dev = make_fs(env)
        f = fs.create("data")
        run(env, fs.append(f, 10_000))
        assert f.size == 10_000
        assert dev.bytes_written == 10_000
        assert fs.used_bytes == 10_000

    def test_read_within_file(self):
        env = Environment()
        fs, dev = make_fs(env)
        f = fs.create("data")
        run(env, fs.append(f, 8192))
        run(env, fs.read(f, 4096, 4096))
        assert dev.bytes_read == 4096

    def test_read_beyond_eof_raises(self):
        env = Environment()
        fs, _ = make_fs(env)
        f = fs.create("data")
        run(env, fs.append(f, 100))

        with pytest.raises(FsError):
            run(env, fs.read(f, 50, 100))

    def test_read_spans_extents(self):
        env = Environment()
        fs, dev = make_fs(env)
        f = fs.create("multi")
        for _ in range(3):
            run(env, fs.append(f, 5000))
        run(env, fs.read(f, 2000, 10_000))
        assert dev.bytes_read == 10_000

    def test_delete_frees_and_reuses_space(self):
        env = Environment()
        fs, _ = make_fs(env)
        f = fs.create("victim")
        run(env, fs.append(f, 50_000))
        fs.delete("victim")
        assert not fs.exists("victim")
        with pytest.raises(FsError):
            run(env, fs.append(f, 10))  # closed file
        # freed extent is reused first-fit
        g = fs.create("reuser")
        run(env, fs.append(g, 40_000))
        assert g.extents[0][0] == 0

    def test_delete_missing_raises(self):
        env = Environment()
        fs, _ = make_fs(env)
        with pytest.raises(FsError):
            fs.delete("ghost")

    def test_device_full(self):
        env = Environment()
        fs, dev = make_fs(env)
        f = fs.create("big")
        with pytest.raises(FsError):
            run(env, fs.append(f, dev.capacity_bytes + 1))

    def test_list_files(self):
        env = Environment()
        fs, _ = make_fs(env)
        fs.create("b")
        fs.create("a")
        assert fs.list_files() == ["a", "b"]


class TestPageCache:
    def test_cached_read_skips_device(self):
        env = Environment()
        cache = PageCache(1 * MiB)
        fs, dev = make_fs(env, page_cache=cache)
        f = fs.create("hot")
        run(env, fs.append(f, 100_000))
        before = dev.bytes_read
        run(env, fs.read(f, 0, 100_000))
        assert dev.bytes_read == before  # served from cache
        assert cache.hits == 1

    def test_eviction_by_capacity(self):
        cache = PageCache(100)
        cache.insert("a", 60)
        cache.insert("b", 60)  # evicts a
        assert not cache.contains("a")
        assert cache.contains("b")
        assert cache.used_bytes == 60

    def test_lru_order_on_touch(self):
        cache = PageCache(100)
        cache.insert("a", 40)
        cache.insert("b", 40)
        assert cache.contains("a")   # touch a -> MRU
        cache.insert("c", 40)        # evicts b
        assert not cache.contains("b")
        assert cache.contains("a")

    def test_grow_accumulates(self):
        cache = PageCache(1000)
        cache.grow("f", 100)
        cache.grow("f", 100)
        assert cache.used_bytes == 200

    def test_evict_specific(self):
        cache = PageCache(1000)
        cache.insert("x", 100)
        cache.evict("x")
        assert cache.used_bytes == 0
        assert not cache.contains("x")

    def test_zero_capacity_disables(self):
        cache = PageCache(0)
        cache.insert("a", 10)
        assert not cache.contains("a")

    def test_delete_evicts_from_cache(self):
        env = Environment()
        cache = PageCache(1 * MiB)
        fs, _ = make_fs(env, page_cache=cache)
        f = fs.create("gone")
        run(env, fs.append(f, 1000))
        fs.delete("gone")
        assert cache.used_bytes == 0


class TestWal:
    def test_group_commit_batches_device_writes(self):
        env = Environment()
        fs, dev = make_fs(env)
        wal = Wal(fs, group_commit_bytes=10_000)
        wal.new_segment()

        def writer():
            for _ in range(25):
                yield from wal.append(1000)

        run(env, writer())
        # 25 KB appended in 10 KB groups: 2 flushes, 5 KB buffered.
        assert wal.flush_count == 2
        assert wal.durable_bytes == 20_000
        assert wal.buffered_bytes == 5_000
        assert dev.bytes_written == 20_000

    def test_sync_flushes_tail(self):
        env = Environment()
        fs, dev = make_fs(env)
        wal = Wal(fs, group_commit_bytes=10_000)

        def writer():
            yield from wal.append(123)
            yield from wal.sync()

        run(env, writer())
        assert wal.durable_bytes == 123
        assert wal.buffered_bytes == 0

    def test_segments_rotate_and_retire(self):
        env = Environment()
        fs, _ = make_fs(env)
        wal = Wal(fs, group_commit_bytes=100)
        s1 = wal.new_segment()

        def writer():
            yield from wal.append(100)

        run(env, writer())
        s2 = wal.new_segment()
        assert s1.name != s2.name
        wal.retire_segment(s1)
        assert not fs.exists(s1.name)
        wal.retire_segment(s1)  # idempotent

    def test_append_auto_opens_segment(self):
        env = Environment()
        fs, _ = make_fs(env)
        wal = Wal(fs, group_commit_bytes=50)

        def writer():
            yield from wal.append(60)

        run(env, writer())
        assert wal.current_segment is not None
        assert wal.flush_count == 1

    def test_validation(self):
        env = Environment()
        fs, _ = make_fs(env)
        with pytest.raises(ValueError):
            Wal(fs, group_commit_bytes=0)
        wal = Wal(fs, group_commit_bytes=10)
        with pytest.raises(ValueError):
            list(wal.append(-1))
