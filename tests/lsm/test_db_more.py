"""Additional DbImpl coverage: factories, tombstone scans, lifecycle."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_db, small_options  # noqa: E402

from repro.lsm import SkipListMemTable  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.types import KIND_DELETE, encode_key  # noqa: E402


def fill(env, db, n, start=0, vlen=48):
    def gen():
        for i in range(start, start + n):
            yield from db.put(encode_key(i), b"v-%d" % i + b"x" * vlen)
    run(env, gen())


def test_skiplist_memtable_end_to_end():
    env = Environment()
    db, _, _ = small_db(env, memtable_factory=SkipListMemTable)
    fill(env, db, 800)
    run(env, db.wait_for_quiesce())
    assert db.stats.flushes >= 1
    for k in (0, 400, 799):
        assert run(env, db.get(encode_key(k))) is not None
    out = run(env, db.scan(encode_key(100), 10))
    assert [k for k, _ in out] == [encode_key(k) for k in range(100, 110)]


def test_scan_internal_exposes_tombstones():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 20)
    run(env, db.delete(encode_key(5)))
    entries = run(env, db.scan_internal(encode_key(0), 30,
                                        include_tombstones=True))
    kinds = {e[0]: e[2] for e in entries}
    assert kinds[encode_key(5)] == KIND_DELETE
    # user scan hides it
    out = run(env, db.scan(encode_key(0), 30))
    assert encode_key(5) not in [k for k, _ in out]


def test_flush_all_with_empty_memtable_is_noop():
    env = Environment()
    db, _, _ = small_db(env)
    run(env, db.flush_all())
    assert db.stats.flushes == 0


def test_flush_all_drains_active_memtable():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 50)  # below the switch threshold
    assert db.stats.flushes == 0
    run(env, db.flush_all())
    assert db.stats.flushes == 1
    assert len(db.mem) == 0
    assert run(env, db.get(encode_key(25))) is not None


def test_zero_page_cache():
    env = Environment()
    db, dev, _ = small_db(env, page_cache_bytes=0)
    fill(env, db, 1200)
    run(env, db.wait_for_quiesce())
    # With no page cache, compaction reads always touch the device.
    assert dev.bytes_read > 0
    assert db.page_cache.hits == 0


def test_get_from_flushed_sst_after_memtable_rotation():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 400)
    run(env, db.flush_all())
    run(env, db.wait_for_quiesce())
    assert len(db.mem) == 0 and not db.imm
    # every read now comes from SSTs
    for k in (0, 200, 399):
        assert run(env, db.get(encode_key(k))) is not None


def test_background_error_surfaces_on_write():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 10)
    db.background_error = RuntimeError("injected")
    with pytest.raises(RuntimeError, match="injected"):
        fill(env, db, 1, start=100)


def test_delete_with_explicit_seq():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 5)
    run(env, db.delete(encode_key(2), seq=10_000))
    assert db.property_snapshot()["seq"] == 10_000
    assert run(env, db.get(encode_key(2))) is None


def test_stats_counters_move():
    env = Environment()
    db, _, _ = small_db(env)
    fill(env, db, 600)
    run(env, db.get(encode_key(1)))
    run(env, db.scan(encode_key(0), 5))
    run(env, db.wait_for_quiesce())
    s = db.stats
    assert s.user_writes == 600
    assert s.user_reads >= 1
    assert s.user_seeks == 1
    assert s.user_nexts == 5
    assert s.flush_bytes_written > 0
    if s.compactions:
        assert s.compaction_bytes_read > 0


def test_wait_for_quiesce_idempotent():
    env = Environment()
    db, _, _ = small_db(env)
    run(env, db.wait_for_quiesce())
    fill(env, db, 300)
    run(env, db.wait_for_quiesce())
    run(env, db.wait_for_quiesce())
    assert db._active_compactions == 0
    assert not db.imm
