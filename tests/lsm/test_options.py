"""Tests for LsmOptions validation and scaling."""

import pytest

from repro.device import KiB, MiB
from repro.lsm import CpuCosts, LsmOptions


def test_defaults_are_rocksdb_like():
    o = LsmOptions()
    assert o.write_buffer_size == 128 * MiB
    assert o.level0_file_num_compaction_trigger == 4
    assert o.level0_slowdown_writes_trigger == 20
    assert o.level0_stop_writes_trigger == 36
    assert o.max_bytes_for_level_multiplier == 10
    assert o.slowdown_enabled is True


def test_max_bytes_for_level():
    o = LsmOptions(max_bytes_for_level_base=100, max_bytes_for_level_multiplier=10)
    assert o.max_bytes_for_level(1) == 100
    assert o.max_bytes_for_level(3) == 10_000
    with pytest.raises(ValueError):
        o.max_bytes_for_level(0)


@pytest.mark.parametrize("bad", [
    dict(write_buffer_size=0),
    dict(max_write_buffer_number=1),
    dict(level0_file_num_compaction_trigger=0),
    dict(level0_slowdown_writes_trigger=50),   # > stop trigger
    dict(soft_pending_compaction_bytes_limit=32 * 1024 * MiB,
         hard_pending_compaction_bytes_limit=16 * 1024 * MiB),
    dict(max_background_compactions=0),
    dict(num_levels=1),
    dict(delayed_write_rate=0),
])
def test_invalid_options_rejected(bad):
    with pytest.raises(ValueError):
        LsmOptions(**bad)


def test_scaled_shrinks_capacities_only():
    o = LsmOptions()
    s = o.scaled(1 / 64)
    assert s.write_buffer_size == o.write_buffer_size // 64
    assert s.max_bytes_for_level_base == o.max_bytes_for_level_base // 64
    assert s.target_file_size_base == o.target_file_size_base // 64
    # counts, rates, cpu costs untouched
    assert s.level0_stop_writes_trigger == o.level0_stop_writes_trigger
    assert s.delayed_write_rate == o.delayed_write_rate
    assert s.cpu is o.cpu
    assert s.max_subcompactions == o.max_subcompactions


def test_scaled_floors_at_4k():
    o = LsmOptions()
    s = o.scaled(1e-9)
    assert s.write_buffer_size == 4 * KiB


def test_scaled_invalid_factor():
    with pytest.raises(ValueError):
        LsmOptions().scaled(0)


def test_cpu_costs_ordering():
    c = CpuCosts()
    # sanity of the cost model's relative magnitudes
    assert c.next < c.put < c.seek
    assert c.flush_per_byte <= c.compact_per_byte
