"""Tests for the write controller's stall / slowdown state machine."""

import pytest

from repro.device import KiB, MiB
from repro.lsm import LsmOptions, StallReason, WriteController, WriteState
from repro.sim import Environment


class FakeStats:
    def __init__(self):
        self.imm = 0
        self.l0 = 0
        self.pending = 0
        self.mem_full = False

    def __call__(self):
        return self.imm, self.l0, self.pending, self.mem_full


def make_wc(env, **opt_kw):
    opt = LsmOptions(**opt_kw)
    stats = FakeStats()
    return WriteController(env, opt, stats), stats, opt


def test_normal_state_passes_instantly():
    env = Environment()
    wc, stats, _ = make_wc(env)
    held = []

    def writer():
        h = yield from wc.gate(4096)
        held.append((env.now, h))

    env.process(writer())
    env.run()
    assert held == [(0, 0.0)]
    assert wc.state == WriteState.NORMAL


def test_stop_on_immutable_memtables():
    env = Environment()
    wc, stats, _ = make_wc(env)
    # max_write_buffer_number=2: stall needs a full active memtable AND an
    # immutable one still flushing.
    stats.imm = 1
    stats.mem_full = True
    wc.refresh()
    assert wc.state == WriteState.STOPPED
    assert wc.reason == StallReason.MEMTABLE


def test_stop_on_l0_and_pending():
    env = Environment()
    wc, stats, opt = make_wc(env)
    stats.l0 = opt.level0_stop_writes_trigger
    wc.refresh()
    assert (wc.state, wc.reason) == (WriteState.STOPPED, StallReason.L0)
    stats.l0 = 0
    stats.pending = opt.hard_pending_compaction_bytes_limit
    wc.refresh()
    assert (wc.state, wc.reason) == (WriteState.STOPPED, StallReason.PENDING_BYTES)


def test_delay_on_l0_slowdown_trigger():
    env = Environment()
    wc, stats, opt = make_wc(env)
    stats.l0 = opt.level0_slowdown_writes_trigger
    wc.refresh()
    assert (wc.state, wc.reason) == (WriteState.DELAYED, StallReason.L0)


def test_gate_blocks_until_stall_clears():
    env = Environment()
    wc, stats, _ = make_wc(env)
    stats.imm = 1
    stats.mem_full = True
    done = []

    def writer():
        h = yield from wc.gate(4096)
        done.append((env.now, h))

    def resolver():
        yield env.timeout(2.5)
        stats.imm = 0
        wc.refresh()

    env.process(writer())
    env.process(resolver())
    env.run()
    assert done[0][0] == pytest.approx(2.5)
    assert done[0][1] == pytest.approx(2.5)
    assert wc.stall_events == 1
    assert wc.stall_intervals == [(0, 2.5)]
    assert wc.total_stall_time == pytest.approx(2.5)


def test_gate_recheck_after_restall():
    """Conditions can re-degrade the instant a stall clears."""
    env = Environment()
    wc, stats, opt = make_wc(env)
    stats.imm = 1
    stats.mem_full = True
    done = []

    def writer():
        yield from wc.gate(4096)
        done.append(env.now)

    def resolver():
        yield env.timeout(1)
        stats.imm = 0
        stats.l0 = opt.level0_stop_writes_trigger  # stalls again immediately
        wc.refresh()
        yield env.timeout(1)
        stats.l0 = 0
        wc.refresh()

    env.process(writer())
    env.process(resolver())
    env.run()
    assert done == [2]
    # Reason changed but the stall never lifted: one continuous stall.
    assert wc.stall_events == 1
    assert wc.stall_intervals == [(0, 2)]


def test_delayed_rate_throttles_to_token_bucket():
    env = Environment()
    wc, stats, opt = make_wc(env, delayed_write_rate=1 * MiB)
    stats.l0 = opt.level0_slowdown_writes_trigger
    finished = []

    def writer():
        for _ in range(10):
            yield from wc.gate(128 * KiB)
        finished.append(env.now)

    env.process(writer())
    env.run()
    # Token bucket: the first write passes free, each later one waits its
    # predecessor's quantum -> 9 x 128 KiB / 1 MiB/s.
    assert finished[0] == pytest.approx(9 * 128 * KiB / (1 * MiB), rel=0.05)
    assert wc.total_delayed_time > 0
    assert wc.slowdown_events == 1


def test_slowdown_disabled_ignores_delay():
    env = Environment()
    wc, stats, opt = make_wc(env, slowdown_enabled=False)
    stats.l0 = opt.level0_slowdown_writes_trigger
    done = []

    def writer():
        h = yield from wc.gate(1 * MiB)
        done.append((env.now, h))

    env.process(writer())
    env.run()
    assert done == [(0, 0.0)]
    assert wc.slowdown_events == 0
    assert wc.is_stall_condition  # detector still sees the pressure


def test_stall_condition_property():
    env = Environment()
    wc, stats, opt = make_wc(env)
    assert not wc.is_stall_condition
    stats.l0 = opt.level0_slowdown_writes_trigger
    wc.refresh()
    assert wc.is_stall_condition


def test_finalize_closes_open_interval():
    env = Environment()
    wc, stats, _ = make_wc(env)
    stats.imm = 1
    stats.mem_full = True
    wc.refresh()

    def advance():
        yield env.timeout(3)

    env.process(advance())
    env.run()
    wc.finalize()
    assert wc.stall_intervals == [(0, 3)]
    assert wc.total_stall_time == pytest.approx(3)
