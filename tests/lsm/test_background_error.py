"""RocksDB-style background-error state: latch, read-only mode, resume."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from helpers import run, small_db, small_options  # noqa: E402

from repro.faults.plan import AlwaysPlan  # noqa: E402
from repro.faults.registry import FAIL, FaultAction, FaultRegistry  # noqa: E402
from repro.resil import (  # noqa: E402
    DeviceError,
    PERSISTENT,
    RetryExecutor,
    RetryPolicy,
    TRANSIENT,
)
from repro.sim import Environment  # noqa: E402
from repro.types import encode_key  # noqa: E402


def bg_err(kind=TRANSIENT):
    return DeviceError(kind, site="wal.sync", detail="scripted")


def tick(env, dt=0.01):
    def g():
        yield env.timeout(dt)
    env.run(until=env.process(g()))


# ----------------------------------------------------------- the latch
def test_latch_refuses_writes_until_resume():
    env = Environment()
    db, _, _ = small_db(env)
    run(env, db.put(encode_key(0), b"before"))
    db.set_background_error(bg_err())
    assert db.read_only
    with pytest.raises(DeviceError):
        run(env, db.put(encode_key(1), b"refused"))
    db.resume()
    assert not db.read_only
    run(env, db.put(encode_key(1), b"after"))
    assert run(env, db.get(encode_key(1))) == b"after"


def test_first_error_wins():
    env = Environment()
    db, _, _ = small_db(env)
    first = bg_err()
    db.set_background_error(first)
    db.set_background_error(bg_err(PERSISTENT))
    assert db.background_error is first


def test_resume_without_error_is_a_noop():
    env = Environment()
    db, _, _ = small_db(env)
    db.resume()
    assert not db.read_only


def test_reads_still_served_in_read_only_mode():
    env = Environment()
    db, _, _ = small_db(env)
    run(env, db.put(encode_key(0), b"v0"))
    db.set_background_error(bg_err())
    assert run(env, db.get(encode_key(0))) == b"v0"


def test_flush_all_and_quiesce_raise_when_latched():
    env = Environment()
    db, _, _ = small_db(env)
    run(env, db.put(encode_key(0), b"v0"))
    db.set_background_error(bg_err())
    with pytest.raises(DeviceError):
        run(env, db.flush_all())


# ------------------------------------------- device-driven WAL latching
def faulty_db(env, seed=1, **opt_kw):
    """A small DB whose block device retries (and so raises DeviceError
    when a persistent fault is armed) instead of leaking InjectedFault."""
    reg = FaultRegistry(seed=seed).install(env)
    db, dev, cpu = small_db(env, small_options(**opt_kw))
    dev.retry = RetryExecutor(
        env, RetryPolicy(max_attempts=2, base_delay=1e-5, max_delay=1e-4),
        name="block")
    return reg, db, dev


def test_wal_group_commit_error_latches_background_error():
    env = Environment()
    reg, db, _ = faulty_db(env)
    # The armable site on the block-write path is the NAND program; the
    # retry executor classifies it and surfaces a DeviceError.
    reg.arm("nand.program", AlwaysPlan(), FaultAction(FAIL, note="persistent"))
    # 5 KiB > wal_group_commit_bytes (4 KiB): the put itself forces the
    # group commit, whose device write fails persistently.
    with pytest.raises(DeviceError) as ei:
        run(env, db.put(encode_key(0), b"x" * (5 << 10)))
    assert ei.value.kind == PERSISTENT
    assert db.read_only
    assert db.background_error is ei.value
    # The batch was NOT applied: not acked, not readable.
    reg.clear_arms()
    assert run(env, db.get(encode_key(0))) is None


def test_flush_error_parks_memtable_and_worker_survives():
    env = Environment()
    reg, db, _ = faulty_db(env, wal_enabled=False)
    # Seal one memtable (16 KiB buffer, 1 KiB values), then let its
    # flush hit a persistent device error.
    for i in range(20):
        run(env, db.put(encode_key(i), b"v" * 1024))
        if db.immutable_count > 0:
            break
    assert db.immutable_count > 0
    reg.arm("nand.program", AlwaysPlan(), FaultAction(FAIL, note="persistent"))
    tick(env, 0.2)
    assert db.read_only
    assert db._paused_flushes, "failed flush was not parked"
    assert db._flush_proc.is_alive, "flush worker died on DeviceError"
    # No partial SST left behind.
    assert not [n for n in db.fs.list_files() if ".sst-" in n]

    # Device healthy again: resume() re-queues the parked flush.
    reg.clear_arms()
    db.resume()
    run(env, db.wait_for_quiesce())
    assert db.stats.flushes >= 1
    assert not db._paused_flushes
    for i in range(5):
        assert run(env, db.get(encode_key(i))) == b"v" * 1024


def test_crash_and_recover_clears_the_latch():
    env = Environment()
    db, _, _ = small_db(env)
    run(env, db.put(encode_key(0), b"v0"))
    db.set_background_error(bg_err())
    report = run(env, db.crash_and_recover())
    assert not db.read_only
    assert report["replayed_records"] >= 0
    run(env, db.put(encode_key(1), b"v1"))   # writable again
