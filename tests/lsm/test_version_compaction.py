"""Tests for version management, compaction picking, and merging."""

import pytest

from repro.device import KiB
from repro.lsm import (
    CompactionPicker,
    FileMetadata,
    LsmOptions,
    SSTable,
    Version,
    VersionEdit,
    VersionSet,
    merge_for_compaction,
    split_into_files,
)
from repro.types import KIND_DELETE, encode_key, make_entry


def opts(**kw):
    base = dict(
        write_buffer_size=64 * KiB,
        max_bytes_for_level_base=256 * KiB,
        target_file_size_base=64 * KiB,
        soft_pending_compaction_bytes_limit=1024 * KiB,
        hard_pending_compaction_bytes_limit=4096 * KiB,
    )
    base.update(kw)
    return LsmOptions(**base)


def sst(number, lo, hi, seq_base=0, vlen=64, step=1):
    entries = [make_entry(encode_key(k), seq_base + k + 1, b"v" * vlen)
               for k in range(lo, hi + 1, step)]
    return SSTable(number, entries, block_size=4 * KiB)


def meta(number, level, lo, hi, **kw):
    return FileMetadata(number=number, level=level, table=sst(number, lo, hi, **kw))


class TestVersion:
    def test_apply_edit_adds_and_removes(self):
        vs = VersionSet(opts())
        m1 = meta(1, 0, 0, 10)
        vs.apply(VersionEdit(added=[m1]))
        assert vs.current.l0_count == 1
        vs.apply(VersionEdit(removed=[(0, 1)]))
        assert vs.current.l0_count == 0

    def test_l1_sorted_after_apply(self):
        vs = VersionSet(opts())
        m_b = meta(2, 1, 50, 60)
        m_a = meta(1, 1, 0, 10)
        vs.apply(VersionEdit(added=[m_b, m_a]))
        files = vs.current.level_files(1)
        assert [f.number for f in files] == [1, 2]

    def test_l1_overlap_rejected(self):
        vs = VersionSet(opts())
        vs.apply(VersionEdit(added=[meta(1, 1, 0, 10)]))
        with pytest.raises(AssertionError):
            vs.apply(VersionEdit(added=[meta(2, 1, 5, 15)]))

    def test_l0_overlap_allowed(self):
        vs = VersionSet(opts())
        vs.apply(VersionEdit(added=[meta(1, 0, 0, 10), meta(2, 0, 5, 15)]))
        assert vs.current.l0_count == 2

    def test_files_for_key_order(self):
        vs = VersionSet(opts())
        vs.apply(VersionEdit(added=[
            meta(1, 0, 0, 10), meta(3, 0, 5, 15),   # L0, newest = #3
            meta(2, 1, 0, 20),                       # L1
        ]))
        hits = [f.number for f in vs.current.files_for_key(encode_key(7))]
        assert hits == [3, 1, 2]  # L0 newest-first, then L1

    def test_files_for_key_skips_nonoverlapping(self):
        vs = VersionSet(opts())
        vs.apply(VersionEdit(added=[meta(1, 1, 0, 10), meta(2, 1, 20, 30)]))
        hits = [f.number for f in vs.current.files_for_key(encode_key(25))]
        assert hits == [2]
        assert list(vs.current.files_for_key(encode_key(15))) == []

    def test_compaction_scores(self):
        o = opts(level0_file_num_compaction_trigger=4)
        vs = VersionSet(o)
        for i in range(4):
            vs.apply(VersionEdit(added=[meta(i + 1, 0, i * 100, i * 100 + 5)]))
        assert vs.current.compaction_score(o, 0) == pytest.approx(1.0)
        level, score = vs.current.best_compaction_level(o)
        assert level == 0

    def test_pending_compaction_bytes(self):
        o = opts(level0_file_num_compaction_trigger=2,
                 max_bytes_for_level_base=1)  # tiny: upper levels = excess
        vs = VersionSet(o)
        assert vs.current.pending_compaction_bytes(o) == 0
        vs.apply(VersionEdit(added=[meta(1, 0, 0, 50), meta(2, 0, 60, 99)]))
        debt_l0 = vs.current.pending_compaction_bytes(o)
        assert debt_l0 > 0
        # With dynamic level sizing the bottommost level is never debt,
        # but an oversized level *above* the bottom is.
        vs.apply(VersionEdit(added=[meta(3, 1, 100, 200),
                                    meta(4, 2, 300, 310)]))
        assert vs.current.pending_compaction_bytes(o) > debt_l0

    def test_dynamic_level_targets(self):
        o = opts(max_bytes_for_level_base=4 * KiB,
                 max_bytes_for_level_multiplier=4)
        vs = VersionSet(o)
        # Bottom at L3: its target is its own size; L1/L2 derive upward.
        vs.apply(VersionEdit(added=[meta(1, 3, 0, 600, vlen=256)]))
        v = vs.current
        targets = v.level_targets(o)
        assert targets[3] == pytest.approx(max(v.level_bytes(3), 4 * KiB))
        assert targets[2] == pytest.approx(max(targets[3] / 4, 1 * KiB))
        assert targets[1] == pytest.approx(max(targets[2] / 4, 1 * KiB))
        # Bottom level itself never scores as needing compaction.
        assert v.compaction_score(o, 3) <= 1.0

    def test_overlapping_files_query(self):
        vs = VersionSet(opts())
        vs.apply(VersionEdit(added=[meta(1, 1, 0, 10), meta(2, 1, 20, 30)]))
        v = vs.current
        got = v.overlapping_files(1, encode_key(5), encode_key(25))
        assert [f.number for f in got] == [1, 2]
        got = v.overlapping_files(1, encode_key(11), encode_key(19))
        assert got == []


class TestPicker:
    def test_picks_l0_when_triggered(self):
        o = opts(level0_file_num_compaction_trigger=2)
        vs = VersionSet(o)
        vs.apply(VersionEdit(added=[meta(1, 0, 0, 10), meta(2, 0, 5, 15),
                                    meta(3, 1, 0, 8)]))
        job = CompactionPicker(o).pick(vs.current)
        assert job is not None and job.is_l0
        assert {f.number for f in job.inputs_low} == {1, 2}
        assert [f.number for f in job.inputs_high] == [3]
        assert job.output_level == 1

    def test_no_pick_below_trigger(self):
        o = opts(level0_file_num_compaction_trigger=4)
        vs = VersionSet(o)
        vs.apply(VersionEdit(added=[meta(1, 0, 0, 10)]))
        assert CompactionPicker(o).pick(vs.current) is None

    def test_l0_serialized_while_busy(self):
        o = opts(level0_file_num_compaction_trigger=1)
        vs = VersionSet(o)
        m1 = meta(1, 0, 0, 10)
        vs.apply(VersionEdit(added=[m1]))
        m1.being_compacted = True
        assert CompactionPicker(o).pick(vs.current) is None

    def test_picks_oversized_l1(self):
        o = opts(max_bytes_for_level_base=4 * KiB)
        vs = VersionSet(o)
        vs.apply(VersionEdit(added=[meta(1, 1, 0, 100), meta(2, 2, 0, 50)]))
        job = CompactionPicker(o).pick(vs.current)
        assert job is not None
        assert job.level == 1 and job.output_level == 2
        assert [f.number for f in job.inputs_low] == [1]
        assert [f.number for f in job.inputs_high] == [2]

    def test_round_robin_cursor_advances(self):
        o = opts(max_bytes_for_level_base=1)
        vs = VersionSet(o)
        vs.apply(VersionEdit(added=[meta(1, 1, 0, 10), meta(2, 1, 20, 30)]))
        picker = CompactionPicker(o)
        j1 = picker.pick(vs.current)
        assert [f.number for f in j1.inputs_low] == [1]
        # without marking busy, the cursor moves to the next file
        j2 = picker.pick(vs.current)
        assert [f.number for f in j2.inputs_low] == [2]


class TestMergeAndSplit:
    def test_merge_newest_wins(self):
        o = opts()
        new = meta(2, 0, 0, 10, seq_base=1000)
        old = meta(1, 1, 0, 10, seq_base=0)
        from repro.lsm import CompactionJob
        job = CompactionJob(level=0, output_level=1,
                            inputs_low=[new], inputs_high=[old])
        merged = merge_for_compaction(job, num_levels=7)
        assert len(merged) == 11
        assert all(e[1] >= 1000 for e in merged)

    def test_tombstones_kept_above_bottom(self):
        from repro.lsm import CompactionJob
        t = SSTable(1, [make_entry(encode_key(1), 5, None, kind=KIND_DELETE)],
                    block_size=4 * KiB)
        m = FileMetadata(number=1, level=0, table=t)
        job = CompactionJob(level=0, output_level=1, inputs_low=[m])
        merged = merge_for_compaction(job, num_levels=7)
        assert len(merged) == 1 and merged[0][2] == KIND_DELETE

    def test_tombstones_dropped_at_bottom(self):
        from repro.lsm import CompactionJob
        t = SSTable(1, [make_entry(encode_key(1), 5, None, kind=KIND_DELETE),
                        make_entry(encode_key(2), 6, b"live")],
                    block_size=4 * KiB)
        m = FileMetadata(number=1, level=5, table=t)
        job = CompactionJob(level=5, output_level=6, inputs_low=[m])
        merged = merge_for_compaction(job, num_levels=7)
        assert [e[0] for e in merged] == [encode_key(2)]

    def test_split_into_files_respects_target(self):
        entries = [make_entry(encode_key(i), i, b"v" * 100) for i in range(100)]
        groups = split_into_files(entries, target_bytes=1000)
        assert sum(len(g) for g in groups) == 100
        for g in groups[:-1]:
            from repro.types import entry_size
            assert sum(entry_size(e) for e in g) <= 1000 + 120

    def test_split_empty(self):
        assert split_into_files([], 100) == []
        with pytest.raises(ValueError):
            split_into_files([], 0)
