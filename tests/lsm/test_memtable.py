"""Tests for both memtable implementations (shared parametrized suite)."""

import pytest

from repro.lsm import DictMemTable, SkipListMemTable
from repro.types import encode_key, entry_size, make_entry


@pytest.fixture(params=[DictMemTable, SkipListMemTable],
                ids=["dict", "skiplist"])
def memtable(request):
    return request.param()


def e(k, seq=1, v=b"v"):
    return make_entry(encode_key(k), seq, v)


def test_add_get(memtable):
    memtable.add(e(1, 1, b"one"))
    got = memtable.get(encode_key(1))
    assert got[3] == b"one"
    assert memtable.get(encode_key(2)) is None


def test_len_counts_unique_keys(memtable):
    for k in (1, 2, 3, 2, 1):
        memtable.add(e(k, k + 10))
    assert len(memtable) == 3


def test_newer_seq_wins(memtable):
    memtable.add(e(5, 1, b"old"))
    memtable.add(e(5, 9, b"new"))
    assert memtable.get(encode_key(5))[3] == b"new"


def test_stale_seq_ignored(memtable):
    memtable.add(e(5, 9, b"new"))
    memtable.add(e(5, 1, b"old"))
    assert memtable.get(encode_key(5))[3] == b"new"


def test_approximate_bytes_tracks_overwrites(memtable):
    memtable.add(e(1, 1, b"x" * 100))
    first = memtable.approximate_bytes
    memtable.add(e(1, 2, b"y" * 10))
    assert memtable.approximate_bytes == first - 90
    assert memtable.approximate_bytes == entry_size(e(1, 2, b"y" * 10))


def test_entries_sorted(memtable):
    import random
    keys = list(range(50))
    random.Random(3).shuffle(keys)
    for k in keys:
        memtable.add(e(k, k + 1))
    ents = memtable.entries()
    assert [x[0] for x in ents] == [encode_key(k) for k in range(50)]


def test_iter_from(memtable):
    for k in (2, 4, 6, 8):
        memtable.add(e(k, k))
    got = [x[0] for x in memtable.iter_from(encode_key(5))]
    assert got == [encode_key(6), encode_key(8)]
    got = [x[0] for x in memtable.iter_from(encode_key(4))]
    assert got == [encode_key(k) for k in (4, 6, 8)]
    assert list(memtable.iter_from(encode_key(9))) == []


def test_range_bounds(memtable):
    assert memtable.range_bounds() is None
    for k in (30, 10, 20):
        memtable.add(e(k, k))
    assert memtable.range_bounds() == (encode_key(10), encode_key(30))


def test_tombstones_stored(memtable):
    memtable.add(make_entry(encode_key(7), 3, None))
    got = memtable.get(encode_key(7))
    assert got[2] == 0  # KIND_DELETE
    assert got[3] is None


def test_implementations_agree_on_random_workload():
    import random
    rng = random.Random(42)
    d, s = DictMemTable(), SkipListMemTable()
    for i in range(500):
        k = rng.randrange(100)
        entry = e(k, i, bytes([k % 250]) * rng.randrange(1, 20))
        d.add(entry)
        s.add(entry)
    assert d.entries() == s.entries()
    assert len(d) == len(s)
    assert d.approximate_bytes == s.approximate_bytes
    for k in range(100):
        assert d.get(encode_key(k)) == s.get(encode_key(k))
