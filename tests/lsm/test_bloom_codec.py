"""Tests for the bloom filter and the binary codec."""

import pytest

from repro.lsm import (
    BloomFilter,
    decode_block,
    decode_entry,
    decode_varint,
    encode_block,
    encode_entry,
    encode_varint,
)
from repro.types import KIND_DELETE, ValueRef, encode_key, make_entry


class TestBloom:
    def test_no_false_negatives(self):
        bf = BloomFilter(200, bits_per_key=10)
        keys = [encode_key(i) for i in range(200)]
        bf.add_all(keys)
        assert all(bf.may_contain(k) for k in keys)

    def test_false_positive_rate_reasonable(self):
        bf = BloomFilter(1000, bits_per_key=10)
        bf.add_all(encode_key(i) for i in range(1000))
        fp = sum(bf.may_contain(encode_key(i)) for i in range(10_000, 30_000))
        # 10 bits/key should be ~1% FP; allow generous slack.
        assert fp / 20_000 < 0.05
        assert bf.false_positive_rate() < 0.05

    def test_empty_filter_rejects(self):
        bf = BloomFilter(0)
        assert not bf.may_contain(b"anything")
        assert bf.false_positive_rate() == 0.0

    def test_size_scales_with_keys(self):
        assert BloomFilter(10_000).size_bytes > BloomFilter(100).size_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(-1)
        with pytest.raises(ValueError):
            BloomFilter(10, bits_per_key=0)


class TestVarint:
    @pytest.mark.parametrize("n", [0, 1, 127, 128, 300, 2**32, 2**63 - 1])
    def test_roundtrip(self, n):
        buf = encode_varint(n)
        val, pos = decode_varint(buf)
        assert val == n
        assert pos == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            decode_varint(b"\x80")

    def test_overlong_raises(self):
        with pytest.raises(ValueError):
            decode_varint(b"\xff" * 11)


class TestEntryCodec:
    def test_put_roundtrip(self):
        e = make_entry(encode_key(42), 1234, b"the value")
        buf = encode_entry(e)
        got, pos = decode_entry(buf)
        assert got == e
        assert pos == len(buf)

    def test_delete_roundtrip(self):
        e = make_entry(encode_key(7), 99, None, kind=KIND_DELETE)
        got, _ = decode_entry(encode_entry(e))
        assert got[2] == KIND_DELETE
        assert got[3] is None

    def test_valueref_materializes_deterministically(self):
        e = make_entry(encode_key(1), 5, ValueRef(seed=77, size=100))
        b1 = encode_entry(e)
        b2 = encode_entry(e)
        assert b1 == b2
        got, _ = decode_entry(b1)
        assert len(got[3]) == 100

    def test_block_roundtrip(self):
        entries = [make_entry(encode_key(i), i, b"v%d" % i) for i in range(20)]
        assert decode_block(encode_block(entries)) == entries

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            encode_entry((b"k", 1, 9, b"v"))

    def test_truncated_block(self):
        buf = encode_entry(make_entry(b"key", 1, b"value"))
        with pytest.raises(ValueError):
            decode_block(buf[:-2])
